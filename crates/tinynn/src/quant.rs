//! Post-training INT8 quantization (extension).
//!
//! The paper's ASIC module computes in FP32; an INT8 datapath is the obvious
//! next step for a microsecond-scale inference engine (multipliers shrink
//! ~5×, SRAM per weight 4×). This module provides symmetric per-layer
//! weight quantization with a straightforward dequantize-and-run evaluation
//! path, so the accuracy cost of the smaller datapath can be measured
//! before committing to it.

use std::cell::RefCell;

use serde::{Deserialize, Serialize};

use crate::matrix::Matrix;
use crate::mlp::{Activation, Dense, ForwardCache, InferScratch, Mlp};

thread_local! {
    /// Reusable scratch behind the allocating convenience wrappers
    /// ([`QuantizedMlp::forward_one`] / [`QuantizedMlp::forward`]), so
    /// repeated calls stop paying per-call heap traffic for the
    /// intermediate activations. Hot paths should still prefer the
    /// explicit `_into` variants (or [`Int8Net`]), which also avoid the
    /// output copy the by-value signatures force.
    static QUANT_ONE_SCRATCH: RefCell<InferScratch> = RefCell::new(InferScratch::new());
    static QUANT_BATCH_CACHE: RefCell<ForwardCache> = RefCell::new(ForwardCache::empty());
}

/// One layer's quantized weights: `w ≈ scale * q`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedLayer {
    /// Quantized weight values in [-127, 127], row-major `out × in`.
    pub q: Vec<i8>,
    /// Output width.
    pub rows: usize,
    /// Input width.
    pub cols: usize,
    /// Dequantization scale (`w = scale * q`).
    pub scale: f32,
    /// Biases, kept in FP32 (negligible storage, large dynamic range).
    pub bias: Vec<f32>,
}

/// An INT8-quantized MLP.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use tinynn::{Matrix, Mlp, QuantizedMlp};
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let mlp = Mlp::new(&[4, 8, 2], &mut rng);
/// let q = QuantizedMlp::quantize(&mlp);
/// let x = [0.3f32, -0.5, 0.8, 0.1];
/// let exact = mlp.forward_one(&x);
/// let approx = q.dequantize().forward_one(&x);
/// for (a, b) in exact.iter().zip(&approx) {
///     assert!((a - b).abs() < 0.1, "quantization error should be small");
/// }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedMlp {
    layers: Vec<QuantizedLayer>,
    activations: Vec<crate::mlp::Activation>,
}

impl QuantizedMlp {
    /// Quantizes a model with symmetric per-layer scales
    /// (`scale = max|w| / 127`).
    pub fn quantize(mlp: &Mlp) -> QuantizedMlp {
        let layers = mlp
            .layers()
            .iter()
            .map(|layer| {
                let max = layer.w.as_slice().iter().fold(0.0f32, |acc, v| acc.max(v.abs()));
                let scale = if max == 0.0 { 1.0 } else { max / 127.0 };
                let q = layer
                    .w
                    .as_slice()
                    .iter()
                    .map(|v| (v / scale).round().clamp(-127.0, 127.0) as i8)
                    .collect();
                QuantizedLayer {
                    q,
                    rows: layer.output_size(),
                    cols: layer.input_size(),
                    scale,
                    bias: layer.b.clone(),
                }
            })
            .collect();
        QuantizedMlp { layers, activations: mlp.layers().iter().map(|l| l.activation).collect() }
    }

    /// Reconstructs an FP32 model from the quantized weights (for
    /// evaluation; a real INT8 datapath would run the integer values
    /// directly).
    pub fn dequantize(&self) -> Mlp {
        let layers = self
            .layers
            .iter()
            .zip(&self.activations)
            .map(|(l, &activation)| {
                let data: Vec<f32> = l.q.iter().map(|&q| f32::from(q) * l.scale).collect();
                Dense {
                    w: crate::matrix::Matrix::from_vec(l.rows, l.cols, data),
                    b: l.bias.clone(),
                    activation,
                }
            })
            .collect();
        Mlp::from_layers(layers)
    }

    /// Storage for the quantized weights in bytes (1 per weight + 4 per
    /// bias + 4 per layer scale).
    pub fn weight_bytes(&self) -> u64 {
        self.layers.iter().map(|l| l.q.len() as u64 + 4 * l.bias.len() as u64 + 4).sum()
    }

    /// Number of non-zero quantized weights (sparsity survives
    /// quantization: a zero weight quantizes to zero).
    pub fn nonzero_weights(&self) -> u64 {
        self.layers.iter().map(|l| l.q.iter().filter(|q| **q != 0).count() as u64).sum()
    }

    /// The per-layer quantization data.
    pub fn layers(&self) -> &[QuantizedLayer] {
        &self.layers
    }

    /// Batch forward pass directly on the quantized weights.
    ///
    /// Runs through a thread-local [`ForwardCache`], so the intermediate
    /// activations are allocation-free once warm; only the returned output
    /// matrix is given up per call (the by-value signature forces it).
    pub fn forward(&self, x: &Matrix) -> Matrix {
        QUANT_BATCH_CACHE.with(|cache| {
            let mut cache = cache.borrow_mut();
            self.forward_into(x, &mut cache);
            // Swap the output out rather than cloning it: the resize at the
            // top of the next `forward_into` re-creates the slot, and every
            // other buffer in the cache stays warm.
            let out = cache.activations.last_mut().expect("cache holds the output");
            std::mem::replace(out, Matrix::zeros(0, 0))
        })
    }

    /// [`QuantizedMlp::forward`] into a reusable cache — the INT8 datapath
    /// the ASIC estimate models: integer weights accumulate per dot product
    /// and the FP32 `scale` is applied once per output, instead of
    /// rescaling every weight up front as [`QuantizedMlp::dequantize`]
    /// does. (The two paths agree to within quantization rounding, not bit
    /// for bit: dequantize-then-multiply rounds each weight separately.)
    ///
    /// # Panics
    ///
    /// Panics if `x` does not match the first layer's input width.
    pub fn forward_into(&self, x: &Matrix, cache: &mut ForwardCache) {
        assert_eq!(x.cols(), self.layers[0].cols, "input width mismatch");
        let input = cache.input_mut();
        input.reshape(x.rows(), x.cols());
        input.as_mut_slice().copy_from_slice(x.as_slice());
        cache.activations.resize(self.layers.len() + 1, Matrix::zeros(0, 0));
        for (l, (layer, &activation)) in self.layers.iter().zip(&self.activations).enumerate() {
            let (before, after) = cache.activations.split_at_mut(l + 1);
            let (h, out) = (&before[l], &mut after[0]);
            out.reshape(h.rows(), layer.rows);
            for i in 0..h.rows() {
                let hrow = h.row(i);
                for j in 0..layer.rows {
                    let qrow = &layer.q[j * layer.cols..(j + 1) * layer.cols];
                    let mut acc = 0.0f32;
                    for (&q, &v) in qrow.iter().zip(hrow) {
                        acc += f32::from(q) * v;
                    }
                    let mut y = acc * layer.scale + layer.bias[j];
                    if activation == Activation::Relu {
                        y = y.max(0.0);
                    }
                    out.row_mut(i)[j] = y;
                }
            }
        }
    }

    /// Single-sample forward pass on the quantized weights.
    ///
    /// Runs through thread-local [`InferScratch`], so only the returned
    /// `Vec` is allocated per call.
    pub fn forward_one(&self, x: &[f32]) -> Vec<f32> {
        QUANT_ONE_SCRATCH.with(|scratch| {
            let mut scratch = scratch.borrow_mut();
            self.forward_one_into(x, &mut scratch).to_vec()
        })
    }

    /// [`QuantizedMlp::forward_one`] through reusable scratch buffers —
    /// allocation-free once warm.
    pub fn forward_one_into<'s>(&self, x: &[f32], scratch: &'s mut InferScratch) -> &'s [f32] {
        scratch.a.clear();
        scratch.a.extend_from_slice(x);
        for (layer, &activation) in self.layers.iter().zip(&self.activations) {
            scratch.b.clear();
            for j in 0..layer.rows {
                let qrow = &layer.q[j * layer.cols..(j + 1) * layer.cols];
                let mut acc = 0.0f32;
                for (&q, &v) in qrow.iter().zip(&scratch.a) {
                    acc += f32::from(q) * v;
                }
                let mut y = acc * layer.scale + layer.bias[j];
                if activation == Activation::Relu {
                    y = y.max(0.0);
                }
                scratch.b.push(y);
            }
            std::mem::swap(&mut scratch.a, &mut scratch.b);
        }
        &scratch.a
    }
}

/// One layer's execution record inside an [`Int8Net`] arena: where its
/// weights and biases live, its shape, and the per-layer output rescale.
#[derive(Debug, Clone, Copy)]
struct Int8Step {
    /// Output width (unpadded).
    rows: usize,
    /// Input width (unpadded).
    cols: usize,
    /// Offset of this layer's `i8` weights in the arena. Layout: for each
    /// *pair* of inputs `(2p, 2p+1)`, a block of `2 * rows_pad` bytes
    /// interleaving the pair's weights per output —
    /// `[w[2p][0], w[2p+1][0], w[2p][1], w[2p+1][1], …]` — so one 16-byte
    /// load covers 8 outputs and a single `vpmaddwd` retires 16 MACs.
    w_off: usize,
    /// Offset of this layer's biases in the shared (padded) bias vector.
    b_off: usize,
    /// Per-layer weight dequantization scale (`w = scale * q`).
    scale: f32,
    /// ReLU floor applied after the affine map: `0.0` for ReLU layers,
    /// `-inf` (the identity under `max`) for linear ones — branchless.
    relu_floor: f32,
    /// `rows` rounded up to a whole number of 8-lane vector chunks; each
    /// weight column and the bias run are zero-padded to this length (zero
    /// weights and biases contribute nothing to the exact i32 accumulation
    /// or the affine map, so padding changes speed, never results).
    rows_pad: usize,
    /// `cols` rounded up likewise; activation buffers keep lanes beyond the
    /// live width at zero so whole-chunk loads read only zeros there.
    cols_pad: usize,
    /// Number of input pairs (`cols` rounded up to even, halved); the last
    /// pair of an odd-width layer carries a zero column.
    pairs: usize,
}

/// A compiled INT8 single-sample inference engine.
///
/// Where [`QuantizedMlp::forward_one_into`] widens every `i8` weight to
/// `f32` inside the dot product, `Int8Net` runs the true integer datapath:
/// activations are dynamically quantized per layer (`xq = round(x * 127 /
/// max|x|)`, round-to-nearest-even), the dot products accumulate in exact
/// `i32` arithmetic over one flat `i8` weight arena (all layer offsets
/// precomputed — no per-call heap traffic, no scalar loop tails), and a
/// single per-layer rescale (`w_scale * x_scale`) converts each accumulator
/// back to `f32` before the bias and ReLU.
///
/// The kernel is compiled twice from the same arithmetic: an AVX2
/// instantiation (selected once at construction via runtime detection; the
/// workspace targets baseline x86-64, where the widening `i8` dot products
/// and the saturation-free quantization do not autovectorize) and a
/// portable scalar one. Integer accumulation is exact and every float op is
/// elementwise-identical, so the two paths produce the same bits.
///
/// Outputs differ from [`QuantizedMlp`] only by the activation quantization
/// (bounded by `max|x| / 254` per element).
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use tinynn::{Int8Net, Mlp};
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let mlp = Mlp::new(&[4, 8, 2], &mut rng);
/// let mut net = Int8Net::compile(&mlp);
/// let x = [0.3f32, -0.5, 0.8, 0.1];
/// let exact = mlp.forward_one(&x);
/// let approx = net.infer(&x);
/// for (a, b) in exact.iter().zip(approx) {
///     assert!((a - b).abs() < 0.1, "int8 error should be small");
/// }
/// ```
#[derive(Debug, Clone)]
pub struct Int8Net {
    /// All layers' quantized weights, pair-interleaved (see
    /// [`Int8Step::w_off`]), back to back.
    wq: Vec<i8>,
    /// All layers' biases, zero-padded to each layer's `rows_pad`.
    bias: Vec<f32>,
    /// Per-layer shapes, offsets and rescales.
    steps: Vec<Int8Step>,
    /// Quantized-activation scratch, fixed at the widest padded width,
    /// stored as packed i16 pairs so the integer kernel can broadcast a
    /// pair with a single 4-byte load.
    xq: Vec<i16>,
    /// Activation ping-pong scratch, fixed at the widest padded width;
    /// lanes beyond the live layer width are kept at zero.
    act_a: Vec<f32>,
    act_b: Vec<f32>,
    /// AVX2 available (runtime-detected once at construction).
    use_avx2: bool,
}

/// Magic bias for branchless round-to-nearest-even: adding `1.5 * 2^23`
/// forces a value in ±2²² into the exponent range where one float ULP is
/// exactly 1, so the low mantissa bits ARE the rounded integer and
/// subtracting the bias bit pattern recovers it. Both `f32::round` (a libm
/// call on the baseline x86-64 target) and an `as i32` cast (a per-lane
/// saturation/NaN fixup sequence) are far too slow for a sub-100ns kernel.
const ROUND_MAGIC: f32 = 12_582_912.0;

impl Int8Net {
    /// Quantizes `mlp` and compiles the result into a flat arena.
    pub fn compile(mlp: &Mlp) -> Int8Net {
        Int8Net::from_quantized(&QuantizedMlp::quantize(mlp))
    }

    /// Compiles an existing [`QuantizedMlp`] into a flat arena.
    pub fn from_quantized(q: &QuantizedMlp) -> Int8Net {
        let mut wq = Vec::new();
        let mut bias = Vec::new();
        let mut steps = Vec::with_capacity(q.layers.len());
        let mut max_pad = 0usize;
        for (layer, &activation) in q.layers.iter().zip(&q.activations) {
            let rows_pad = layer.rows.div_ceil(8) * 8;
            let cols_pad = layer.cols.div_ceil(8) * 8;
            let pairs = layer.cols.div_ceil(2);
            steps.push(Int8Step {
                rows: layer.rows,
                cols: layer.cols,
                w_off: wq.len(),
                b_off: bias.len(),
                scale: layer.scale,
                relu_floor: if activation == Activation::Relu { 0.0 } else { f32::NEG_INFINITY },
                rows_pad,
                cols_pad,
                pairs,
            });
            // Pair-interleaved transpose (see Int8Step::w_off); reads past
            // the true shape fill with zero weights, which contribute
            // nothing to the exact integer accumulation.
            let at = |k: usize, j: usize| {
                if k < layer.cols && j < layer.rows {
                    layer.q[j * layer.cols + k]
                } else {
                    0
                }
            };
            for p in 0..pairs {
                for j in 0..rows_pad {
                    wq.push(at(2 * p, j));
                    wq.push(at(2 * p + 1, j));
                }
            }
            bias.extend_from_slice(&layer.bias);
            bias.resize(bias.len() + (rows_pad - layer.rows), 0.0);
            max_pad = max_pad.max(cols_pad).max(rows_pad);
        }
        Int8Net {
            wq,
            bias,
            steps,
            xq: vec![0; max_pad],
            act_a: vec![0.0; max_pad],
            act_b: vec![0.0; max_pad],
            use_avx2: detect_avx2(),
        }
    }

    /// Input width of the first layer.
    pub fn input_size(&self) -> usize {
        self.steps.first().map_or(0, |s| s.cols)
    }

    /// Output width of the last layer.
    pub fn output_size(&self) -> usize {
        self.steps.last().map_or(0, |s| s.rows)
    }

    /// Arena bytes for the quantized weights (1 per weight, including the
    /// zero padding that rounds each column to a whole vector chunk).
    pub fn weight_bytes(&self) -> u64 {
        self.wq.len() as u64
    }

    /// Single-sample forward pass on the integer datapath. Allocation-free
    /// once constructed; the returned slice borrows internal scratch.
    ///
    /// # Panics
    ///
    /// Panics if `x` does not match the first layer's input width.
    pub fn infer(&mut self, x: &[f32]) -> &[f32] {
        assert_eq!(x.len(), self.input_size(), "input width mismatch");
        #[cfg(target_arch = "x86_64")]
        if self.use_avx2 {
            // SAFETY: AVX2 support was confirmed by runtime detection at
            // construction.
            unsafe { self.infer_avx2(x) };
            return &self.act_a[..self.output_size()];
        }
        self.infer_portable(x);
        &self.act_a[..self.output_size()]
    }

    /// Loads `x` into the (padded) input buffer and returns the bit pattern
    /// of `max|x|` over the first layer's padded width.
    #[inline(always)]
    fn load_input(&mut self, x: &[f32]) -> u32 {
        let cols_pad = self.steps[0].cols_pad;
        self.act_a[..x.len()].copy_from_slice(x);
        self.act_a[x.len()..cols_pad].fill(0.0);
        // max|v| as an unsigned bit-pattern max: non-negative finite floats
        // order like their bit patterns, and it compiles to a 1-cycle
        // integer max instead of the NaN-aware float max sequence.
        let mut amax_bits = 0u32;
        for &v in &self.act_a[..cols_pad] {
            amax_bits = amax_bits.max(v.to_bits() & 0x7fff_ffff);
        }
        amax_bits
    }

    /// AVX2 kernel: the whole layer pipeline (quantize → integer
    /// accumulate → rescale, with the next layer's `max|x|` folded into the
    /// rescale pass) in 8-lane chunks with no scalar tails. The inter-layer
    /// chain — `max|x|` reduction, the `127 / max|x|` quantization scale and
    /// the dequantization rescale — stays entirely in the vector domain, so
    /// no layer ever round-trips through a scalar register.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn infer_avx2(&mut self, x: &[f32]) {
        use std::arch::x86_64::{
            __m128i, __m256i, _mm256_add_ps, _mm256_and_si256, _mm256_castps_si256,
            _mm256_castsi256_ps, _mm256_castsi256_si128, _mm256_loadu_ps, _mm256_max_epu32,
            _mm256_mul_ps, _mm256_packs_epi32, _mm256_permute2x128_si256, _mm256_permute4x64_epi64,
            _mm256_set1_epi32, _mm256_set1_ps, _mm256_setzero_si256, _mm256_shuffle_epi32,
            _mm256_sub_epi32, _mm_storeu_si128,
        };
        // Load the input and fold its abs-max, both vectorized; activation
        // buffers keep padding lanes at zero.
        let cols0 = self.steps[0].cols_pad;
        self.act_a[..x.len()].copy_from_slice(x);
        self.act_a[x.len()..cols0].fill(0.0);
        let wq = self.wq.as_ptr();
        let bias = self.bias.as_ptr();
        let xq = self.xq.as_mut_ptr();
        let mut cur = self.act_a.as_mut_ptr();
        let mut nxt = self.act_b.as_mut_ptr();
        let magic = _mm256_set1_ps(ROUND_MAGIC);
        let magic_i = _mm256_castps_si256(magic);
        let absm = _mm256_set1_epi32(0x7fff_ffff);
        let expm = _mm256_set1_epi32(0x7f80_0000u32 as i32);
        // Exponent floor 2^-100: far below any live activation, large
        // enough that 2^(6-e) and 2^(e-6) both stay finite normals.
        let exp_min = _mm256_set1_epi32(27 << 23);
        // Bit-pattern bases for inv = 2^(133-e'): (260 << 23) wraps i32,
        // but epi32 subtraction wraps identically, so the low 32 bits — a
        // positive, normal float — come out right.
        let inv_base = _mm256_set1_epi32(0x8200_0000u32 as i32);
        let sx_bias = _mm256_set1_epi32(6 << 23);
        let mut mx = _mm256_setzero_si256();
        let mut k = 0;
        while k < cols0 {
            // SAFETY: `act_a` holds `max_pad >= cols0` lanes, a multiple of 8.
            let v = _mm256_castps_si256(_mm256_loadu_ps(cur.add(k)));
            mx = _mm256_max_epu32(mx, _mm256_and_si256(v, absm));
            k += 8;
        }
        for step in &self.steps {
            // All-lanes max of the 8 partial abs-bit maxes (stays in SIMD).
            let m = _mm256_max_epu32(mx, _mm256_permute2x128_si256::<0b0000_0001>(mx, mx));
            let m = _mm256_max_epu32(m, _mm256_shuffle_epi32::<0b0100_1110>(m));
            let m = _mm256_max_epu32(m, _mm256_shuffle_epi32::<0b1011_0001>(m));
            // Power-of-two quantization scale from the exponent of max|x|:
            // inv = 2^(6-e) puts the largest activation in [64, 128), and
            // sx = 2^(e-6) undoes it exactly — one integer subtract instead
            // of a 13-cycle divide, and the scaling multiply becomes exact.
            // Clamping the exponent bits from below handles zero/subnormal
            // activations (they quantize to zero against a huge-but-finite
            // inv, and the rescale flushes to ~0 so outputs fall back to the
            // bias) without a branch or a NaN.
            let exp = _mm256_max_epu32(_mm256_and_si256(m, expm), exp_min);
            let inv = _mm256_castsi256_ps(_mm256_sub_epi32(inv_base, exp));
            let rescale = _mm256_mul_ps(
                _mm256_set1_ps(step.scale),
                _mm256_castsi256_ps(_mm256_sub_epi32(exp, sx_bias)),
            );
            // Quantize the live activations (padding lanes hold zeros and
            // quantize to zero), packing each 8-lane chunk to i16 so the
            // accumulate loop broadcasts pairs with one 4-byte load.
            let mut k = 0;
            while k < step.cols_pad {
                // SAFETY: `act_*` hold `max_pad` lanes and `xq` holds
                // `max_pad` i16 lanes; `cols_pad <= max_pad`, multiple of 8.
                let v = _mm256_loadu_ps(cur.add(k));
                // No clamp: the power-of-two scaling is exact, so
                // |x * inv| < 128 always — well inside the i16 lanes the
                // pack saturates to and the i16 multiplies of `vpmaddwd`.
                let sc = _mm256_mul_ps(v, inv);
                let q = _mm256_sub_epi32(_mm256_castps_si256(_mm256_add_ps(sc, magic)), magic_i);
                // packs duplicates each 128-bit half; permute4x64 picks the
                // two distinct quadwords into the low 128 bits.
                let q16: __m256i = _mm256_packs_epi32(q, q);
                let q16 = _mm256_permute4x64_epi64::<0b00_00_10_00>(q16);
                _mm_storeu_si128(xq.add(k) as *mut __m128i, _mm256_castsi256_si128(q16));
                k += 8;
            }
            // Accumulate + rescale, monomorphized on the chunk count so the
            // i32 accumulators stay in vector registers across the whole
            // input loop. The paper's nets are at most 20 neurons wide, so
            // 1–3 chunks cover every real layer.
            let w = wq.add(step.w_off);
            let b = bias.add(step.b_off);
            let floor = _mm256_set1_ps(step.relu_floor);
            mx = match step.rows_pad / 8 {
                1 => int8_layer_avx2::<1>(w, xq, step.pairs, b, rescale, floor, nxt),
                2 => int8_layer_avx2::<2>(w, xq, step.pairs, b, rescale, floor, nxt),
                3 => int8_layer_avx2::<3>(w, xq, step.pairs, b, rescale, floor, nxt),
                _ => int8_layer_avx2_wide(w, xq, step.pairs, step.rows_pad, b, rescale, floor, nxt),
            };
            std::mem::swap(&mut cur, &mut nxt);
        }
        if self.steps.len() % 2 == 1 {
            std::mem::swap(&mut self.act_a, &mut self.act_b);
        }
    }

    /// Portable instantiation of the same arithmetic; produces bit-identical
    /// results (see [`Int8Net`]).
    fn infer_portable(&mut self, x: &[f32]) {
        let mut amax_bits = self.load_input(x);
        for step in &self.steps {
            // Power-of-two scale from the exponent bits of max|x| — the
            // scalar spelling of the vector kernel's exponent arithmetic
            // (see infer_avx2), bit-identical by construction.
            let exp = (amax_bits & 0x7f80_0000).max(27 << 23);
            let inv = f32::from_bits(0x8200_0000u32.wrapping_sub(exp));
            let rescale = step.scale * f32::from_bits(exp - (6 << 23));
            let magic_bits = ROUND_MAGIC.to_bits() as i32;
            for (o, &v) in self.xq[..step.cols_pad].iter_mut().zip(&self.act_a) {
                let sc = v * inv;
                *o = ((sc + ROUND_MAGIC).to_bits() as i32).wrapping_sub(magic_bits) as i16;
            }
            let w = &self.wq[step.w_off..step.w_off + 2 * step.rows_pad * step.pairs];
            let b = &self.bias[step.b_off..step.b_off + step.rows_pad];
            // acc[j] += w[k][j] * xq[k], in exact i32, walking the
            // pair-interleaved arena exactly as the vector kernel does.
            let mut acc = [0i32; 32];
            let acc = &mut acc[..step.rows_pad];
            for p in 0..step.pairs {
                let x0 = i32::from(self.xq[2 * p]);
                let x1 = i32::from(self.xq[2 * p + 1]);
                let blk = &w[p * 2 * step.rows_pad..(p + 1) * 2 * step.rows_pad];
                for (j, a) in acc.iter_mut().enumerate() {
                    *a += i32::from(blk[2 * j]) * x0 + i32::from(blk[2 * j + 1]) * x1;
                }
            }
            amax_bits = 0;
            let out = &mut self.act_b[..step.rows_pad];
            for ((o, &a), &bj) in out.iter_mut().zip(acc.iter()).zip(b) {
                let y = (a as f32 * rescale + bj).max(step.relu_floor);
                *o = y;
                amax_bits = amax_bits.max(y.to_bits() & 0x7fff_ffff);
            }
            std::mem::swap(&mut self.act_a, &mut self.act_b);
        }
    }
}

/// One layer's accumulate + rescale with `C` 8-lane register accumulators.
/// Per input pair: one 4-byte broadcast load picks up the packed i16
/// activation pair, one 16-byte load covers 8 outputs' interleaved weight
/// pairs, `vpmovsxbw` widens them to i16, and a single `vpmaddwd` retires
/// 16 MACs into exact i32 lanes. The rescale pass converts the sums to
/// f32, applies the per-layer rescale, bias and ReLU floor, stores the
/// outputs and returns the 8 partial abs-bit maxes of `|y|` (the caller
/// reduces them into the next layer's quantization range, still in SIMD).
///
/// `vpmaddwd` is exact here: each product is at most `127 * 127`, so the
/// pairwise i16×i16 sum fits comfortably in its i32 lanes.
///
/// # Safety
///
/// Caller must ensure the CPU supports AVX2, `w` holds `pairs` blocks of
/// `16 * C` interleaved weights, `bias` and `out` hold `8 * C` lanes, and
/// `xq` holds `2 * pairs` packed i16 values.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn int8_layer_avx2<const C: usize>(
    w: *const i8,
    xq: *const i16,
    pairs: usize,
    bias: *const f32,
    rescale: std::arch::x86_64::__m256,
    relu_floor: std::arch::x86_64::__m256,
    out: *mut f32,
) -> std::arch::x86_64::__m256i {
    use std::arch::x86_64::{
        __m128i, _mm256_add_epi32, _mm256_add_ps, _mm256_and_si256, _mm256_castps_si256,
        _mm256_cvtepi32_ps, _mm256_cvtepi8_epi16, _mm256_loadu_ps, _mm256_madd_epi16,
        _mm256_max_epu32, _mm256_max_ps, _mm256_mul_ps, _mm256_set1_epi32, _mm256_setzero_si256,
        _mm256_storeu_ps, _mm_loadu_si128,
    };
    let mut regs = [_mm256_setzero_si256(); C];
    for p in 0..pairs {
        // SAFETY: xq holds 2*pairs packed i16 values; one aligned-enough
        // 4-byte load broadcasts the pair into every i32 lane.
        let xk = _mm256_set1_epi32(*(xq as *const i32).add(p));
        let blk = w.add(p * 16 * C);
        for (c, reg) in regs.iter_mut().enumerate() {
            // SAFETY: each pair block is 16*C bytes.
            let q16 = _mm256_cvtepi8_epi16(_mm_loadu_si128(blk.add(16 * c) as *const __m128i));
            *reg = _mm256_add_epi32(*reg, _mm256_madd_epi16(q16, xk));
        }
    }
    let absm = _mm256_set1_epi32(0x7fff_ffff);
    let mut mx = _mm256_setzero_si256();
    for (c, reg) in regs.iter().enumerate() {
        // SAFETY: bias and out hold 8*C lanes.
        let y = _mm256_add_ps(
            _mm256_mul_ps(_mm256_cvtepi32_ps(*reg), rescale),
            _mm256_loadu_ps(bias.add(8 * c)),
        );
        let y = _mm256_max_ps(y, relu_floor);
        _mm256_storeu_ps(out.add(8 * c), y);
        mx = _mm256_max_epu32(mx, _mm256_and_si256(_mm256_castps_si256(y), absm));
    }
    mx
}

/// Fallback for layers wider than the register-resident specializations:
/// the same arithmetic, one 8-lane output chunk at a time.
///
/// # Safety
///
/// As [`int8_layer_avx2`], with `rows_pad` (a multiple of 8) in place of
/// `8 * C`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
unsafe fn int8_layer_avx2_wide(
    w: *const i8,
    xq: *const i16,
    pairs: usize,
    rows_pad: usize,
    bias: *const f32,
    rescale: std::arch::x86_64::__m256,
    relu_floor: std::arch::x86_64::__m256,
    out: *mut f32,
) -> std::arch::x86_64::__m256i {
    use std::arch::x86_64::{
        __m128i, _mm256_add_epi32, _mm256_add_ps, _mm256_and_si256, _mm256_castps_si256,
        _mm256_cvtepi32_ps, _mm256_cvtepi8_epi16, _mm256_loadu_ps, _mm256_madd_epi16,
        _mm256_max_epu32, _mm256_max_ps, _mm256_mul_ps, _mm256_set1_epi32, _mm256_setzero_si256,
        _mm256_storeu_ps, _mm_loadu_si128,
    };
    let absm = _mm256_set1_epi32(0x7fff_ffff);
    let mut mx = _mm256_setzero_si256();
    for base in (0..rows_pad).step_by(8) {
        let mut reg = _mm256_setzero_si256();
        for p in 0..pairs {
            // SAFETY: as int8_layer_avx2, with each pair block spanning
            // `2 * rows_pad` bytes and this chunk starting at `2 * base`.
            let xk = _mm256_set1_epi32(*(xq as *const i32).add(p));
            let chunk = w.add(p * 2 * rows_pad + 2 * base);
            let q16 = _mm256_cvtepi8_epi16(_mm_loadu_si128(chunk as *const __m128i));
            reg = _mm256_add_epi32(reg, _mm256_madd_epi16(q16, xk));
        }
        let y = _mm256_add_ps(
            _mm256_mul_ps(_mm256_cvtepi32_ps(reg), rescale),
            _mm256_loadu_ps(bias.add(base)),
        );
        let y = _mm256_max_ps(y, relu_floor);
        _mm256_storeu_ps(out.add(base), y);
        mx = _mm256_max_epu32(mx, _mm256_and_si256(_mm256_castps_si256(y), absm));
    }
    mx
}

/// Runtime AVX2 detection for [`Int8Net`] kernel dispatch.
#[cfg(target_arch = "x86_64")]
fn detect_avx2() -> bool {
    std::arch::is_x86_feature_detected!("avx2")
}

/// Non-x86 targets always take the portable kernel.
#[cfg(not(target_arch = "x86_64"))]
fn detect_avx2() -> bool {
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;
    use crate::prune::prune_magnitude;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model() -> Mlp {
        let mut rng = StdRng::seed_from_u64(3);
        Mlp::new(&[5, 12, 6], &mut rng)
    }

    #[test]
    fn roundtrip_error_is_bounded_by_scale() {
        let mlp = model();
        let q = QuantizedMlp::quantize(&mlp);
        let deq = q.dequantize();
        for (orig, layer) in mlp.layers().iter().zip(deq.layers()) {
            let max = orig.w.as_slice().iter().fold(0.0f32, |a, v| a.max(v.abs()));
            let step = max / 127.0;
            for (a, b) in orig.w.as_slice().iter().zip(layer.w.as_slice()) {
                assert!((a - b).abs() <= step / 2.0 + 1e-6);
            }
        }
    }

    #[test]
    fn forward_outputs_stay_close() {
        let mlp = model();
        let deq = QuantizedMlp::quantize(&mlp).dequantize();
        let x = Matrix::from_rows(&[&[0.2, -0.4, 0.9, 0.0, -1.1]]);
        let a = mlp.forward(&x);
        let b = deq.forward(&x);
        for (u, v) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((u - v).abs() < 0.15, "{u} vs {v}");
        }
    }

    #[test]
    fn direct_forward_tracks_dequantized_forward() {
        let mlp = model();
        let q = QuantizedMlp::quantize(&mlp);
        let deq = q.dequantize();
        let x = Matrix::from_rows(&[&[0.2, -0.4, 0.9, 0.0, -1.1], &[1.0, 1.0, -1.0, 0.3, 0.0]]);
        let direct = q.forward(&x);
        let via_deq = deq.forward(&x);
        assert_eq!((direct.rows(), direct.cols()), (2, 6));
        for (a, b) in direct.as_slice().iter().zip(via_deq.as_slice()) {
            // Scale-after-sum vs scale-per-weight: tiny rounding drift only.
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
        let mut scratch = InferScratch::new();
        let single = q.forward_one_into(x.row(0), &mut scratch).to_vec();
        assert_eq!(single, direct.row(0), "single-sample path matches batch");
        assert_eq!(q.forward_one(x.row(0)), single);
    }

    #[test]
    fn sparsity_survives_quantization() {
        let mut mlp = model();
        prune_magnitude(&mut mlp, 0.6);
        let q = QuantizedMlp::quantize(&mlp);
        assert_eq!(q.nonzero_weights(), mlp.nonzero_weights());
    }

    #[test]
    fn storage_is_a_quarter_of_fp32() {
        let mlp = model();
        let q = QuantizedMlp::quantize(&mlp);
        let fp32_bytes = mlp.weight_count() * 4;
        assert!(q.weight_bytes() < fp32_bytes / 2, "INT8 must at least halve storage");
    }

    #[test]
    fn int8_net_tracks_quantized_forward() {
        let mlp = model();
        let q = QuantizedMlp::quantize(&mlp);
        let mut net = Int8Net::from_quantized(&q);
        assert_eq!((net.input_size(), net.output_size()), (5, 6));
        let mut scratch = InferScratch::new();
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..64 {
            let x: Vec<f32> = (0..5).map(|_| rand::Rng::gen_range(&mut rng, -2.0..2.0)).collect();
            let reference = q.forward_one_into(&x, &mut scratch).to_vec();
            let got = net.infer(&x).to_vec();
            assert_eq!(got.len(), reference.len());
            for (a, b) in got.iter().zip(&reference) {
                // Activation quantization adds at most max|x|/254 per input
                // element; through these tiny layers that stays well under
                // 0.1 absolute.
                assert!((a - b).abs() < 0.1, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn int8_net_is_deterministic_and_reusable() {
        let mlp = model();
        let mut net = Int8Net::compile(&mlp);
        let x = [0.2f32, -0.4, 0.9, 0.0, -1.1];
        let first = net.infer(&x).to_vec();
        for _ in 0..8 {
            assert_eq!(net.infer(&x), &first[..], "repeat calls must be bit-identical");
        }
        // Zero input exercises the amax == 0 guard: outputs collapse to the
        // (post-activation) biases.
        let zeros = [0.0f32; 5];
        let out = net.infer(&zeros);
        assert!(out.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn int8_net_arena_is_flat() {
        let mlp = model();
        let q = QuantizedMlp::quantize(&mlp);
        let net = Int8Net::from_quantized(&q);
        let total: usize =
            q.layers().iter().map(|l| l.cols.div_ceil(2) * 2 * (l.rows.div_ceil(8) * 8)).sum();
        assert_eq!(
            net.weight_bytes(),
            total as u64,
            "one contiguous i8 arena, padded pair columns"
        );
    }

    #[test]
    fn zero_layer_quantizes_without_nan() {
        let mut mlp = model();
        mlp.layers_mut()[0].w.map_inplace(|_| 0.0);
        let q = QuantizedMlp::quantize(&mlp);
        let deq = q.dequantize();
        assert!(deq.layers()[0].w.as_slice().iter().all(|v| *v == 0.0));
    }
}
