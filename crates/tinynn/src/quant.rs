//! Post-training INT8 quantization (extension).
//!
//! The paper's ASIC module computes in FP32; an INT8 datapath is the obvious
//! next step for a microsecond-scale inference engine (multipliers shrink
//! ~5×, SRAM per weight 4×). This module provides symmetric per-layer
//! weight quantization with a straightforward dequantize-and-run evaluation
//! path, so the accuracy cost of the smaller datapath can be measured
//! before committing to it.

use serde::{Deserialize, Serialize};

use crate::mlp::{Dense, Mlp};

/// One layer's quantized weights: `w ≈ scale * q`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedLayer {
    /// Quantized weight values in [-127, 127], row-major `out × in`.
    pub q: Vec<i8>,
    /// Output width.
    pub rows: usize,
    /// Input width.
    pub cols: usize,
    /// Dequantization scale (`w = scale * q`).
    pub scale: f32,
    /// Biases, kept in FP32 (negligible storage, large dynamic range).
    pub bias: Vec<f32>,
}

/// An INT8-quantized MLP.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use tinynn::{Matrix, Mlp, QuantizedMlp};
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let mlp = Mlp::new(&[4, 8, 2], &mut rng);
/// let q = QuantizedMlp::quantize(&mlp);
/// let x = [0.3f32, -0.5, 0.8, 0.1];
/// let exact = mlp.forward_one(&x);
/// let approx = q.dequantize().forward_one(&x);
/// for (a, b) in exact.iter().zip(&approx) {
///     assert!((a - b).abs() < 0.1, "quantization error should be small");
/// }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedMlp {
    layers: Vec<QuantizedLayer>,
    activations: Vec<crate::mlp::Activation>,
}

impl QuantizedMlp {
    /// Quantizes a model with symmetric per-layer scales
    /// (`scale = max|w| / 127`).
    pub fn quantize(mlp: &Mlp) -> QuantizedMlp {
        let layers = mlp
            .layers()
            .iter()
            .map(|layer| {
                let max = layer.w.as_slice().iter().fold(0.0f32, |acc, v| acc.max(v.abs()));
                let scale = if max == 0.0 { 1.0 } else { max / 127.0 };
                let q = layer
                    .w
                    .as_slice()
                    .iter()
                    .map(|v| (v / scale).round().clamp(-127.0, 127.0) as i8)
                    .collect();
                QuantizedLayer {
                    q,
                    rows: layer.output_size(),
                    cols: layer.input_size(),
                    scale,
                    bias: layer.b.clone(),
                }
            })
            .collect();
        QuantizedMlp { layers, activations: mlp.layers().iter().map(|l| l.activation).collect() }
    }

    /// Reconstructs an FP32 model from the quantized weights (for
    /// evaluation; a real INT8 datapath would run the integer values
    /// directly).
    pub fn dequantize(&self) -> Mlp {
        let layers = self
            .layers
            .iter()
            .zip(&self.activations)
            .map(|(l, &activation)| {
                let data: Vec<f32> = l.q.iter().map(|&q| f32::from(q) * l.scale).collect();
                Dense {
                    w: crate::matrix::Matrix::from_vec(l.rows, l.cols, data),
                    b: l.bias.clone(),
                    activation,
                }
            })
            .collect();
        Mlp::from_layers(layers)
    }

    /// Storage for the quantized weights in bytes (1 per weight + 4 per
    /// bias + 4 per layer scale).
    pub fn weight_bytes(&self) -> u64 {
        self.layers.iter().map(|l| l.q.len() as u64 + 4 * l.bias.len() as u64 + 4).sum()
    }

    /// Number of non-zero quantized weights (sparsity survives
    /// quantization: a zero weight quantizes to zero).
    pub fn nonzero_weights(&self) -> u64 {
        self.layers.iter().map(|l| l.q.iter().filter(|q| **q != 0).count() as u64).sum()
    }

    /// The per-layer quantization data.
    pub fn layers(&self) -> &[QuantizedLayer] {
        &self.layers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;
    use crate::prune::prune_magnitude;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model() -> Mlp {
        let mut rng = StdRng::seed_from_u64(3);
        Mlp::new(&[5, 12, 6], &mut rng)
    }

    #[test]
    fn roundtrip_error_is_bounded_by_scale() {
        let mlp = model();
        let q = QuantizedMlp::quantize(&mlp);
        let deq = q.dequantize();
        for (orig, layer) in mlp.layers().iter().zip(deq.layers()) {
            let max = orig.w.as_slice().iter().fold(0.0f32, |a, v| a.max(v.abs()));
            let step = max / 127.0;
            for (a, b) in orig.w.as_slice().iter().zip(layer.w.as_slice()) {
                assert!((a - b).abs() <= step / 2.0 + 1e-6);
            }
        }
    }

    #[test]
    fn forward_outputs_stay_close() {
        let mlp = model();
        let deq = QuantizedMlp::quantize(&mlp).dequantize();
        let x = Matrix::from_rows(&[&[0.2, -0.4, 0.9, 0.0, -1.1]]);
        let a = mlp.forward(&x);
        let b = deq.forward(&x);
        for (u, v) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((u - v).abs() < 0.15, "{u} vs {v}");
        }
    }

    #[test]
    fn sparsity_survives_quantization() {
        let mut mlp = model();
        prune_magnitude(&mut mlp, 0.6);
        let q = QuantizedMlp::quantize(&mlp);
        assert_eq!(q.nonzero_weights(), mlp.nonzero_weights());
    }

    #[test]
    fn storage_is_a_quarter_of_fp32() {
        let mlp = model();
        let q = QuantizedMlp::quantize(&mlp);
        let fp32_bytes = mlp.weight_count() * 4;
        assert!(q.weight_bytes() < fp32_bytes / 2, "INT8 must at least halve storage");
    }

    #[test]
    fn zero_layer_quantizes_without_nan() {
        let mut mlp = model();
        mlp.layers_mut()[0].w.map_inplace(|_| 0.0);
        let q = QuantizedMlp::quantize(&mlp);
        let deq = q.dequantize();
        assert!(deq.layers()[0].w.as_slice().iter().all(|v| *v == 0.0));
    }
}
