//! Post-training INT8 quantization (extension).
//!
//! The paper's ASIC module computes in FP32; an INT8 datapath is the obvious
//! next step for a microsecond-scale inference engine (multipliers shrink
//! ~5×, SRAM per weight 4×). This module provides symmetric per-layer
//! weight quantization with a straightforward dequantize-and-run evaluation
//! path, so the accuracy cost of the smaller datapath can be measured
//! before committing to it.

use serde::{Deserialize, Serialize};

use crate::matrix::Matrix;
use crate::mlp::{Activation, Dense, ForwardCache, InferScratch, Mlp};

/// One layer's quantized weights: `w ≈ scale * q`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedLayer {
    /// Quantized weight values in [-127, 127], row-major `out × in`.
    pub q: Vec<i8>,
    /// Output width.
    pub rows: usize,
    /// Input width.
    pub cols: usize,
    /// Dequantization scale (`w = scale * q`).
    pub scale: f32,
    /// Biases, kept in FP32 (negligible storage, large dynamic range).
    pub bias: Vec<f32>,
}

/// An INT8-quantized MLP.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use tinynn::{Matrix, Mlp, QuantizedMlp};
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let mlp = Mlp::new(&[4, 8, 2], &mut rng);
/// let q = QuantizedMlp::quantize(&mlp);
/// let x = [0.3f32, -0.5, 0.8, 0.1];
/// let exact = mlp.forward_one(&x);
/// let approx = q.dequantize().forward_one(&x);
/// for (a, b) in exact.iter().zip(&approx) {
///     assert!((a - b).abs() < 0.1, "quantization error should be small");
/// }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedMlp {
    layers: Vec<QuantizedLayer>,
    activations: Vec<crate::mlp::Activation>,
}

impl QuantizedMlp {
    /// Quantizes a model with symmetric per-layer scales
    /// (`scale = max|w| / 127`).
    pub fn quantize(mlp: &Mlp) -> QuantizedMlp {
        let layers = mlp
            .layers()
            .iter()
            .map(|layer| {
                let max = layer.w.as_slice().iter().fold(0.0f32, |acc, v| acc.max(v.abs()));
                let scale = if max == 0.0 { 1.0 } else { max / 127.0 };
                let q = layer
                    .w
                    .as_slice()
                    .iter()
                    .map(|v| (v / scale).round().clamp(-127.0, 127.0) as i8)
                    .collect();
                QuantizedLayer {
                    q,
                    rows: layer.output_size(),
                    cols: layer.input_size(),
                    scale,
                    bias: layer.b.clone(),
                }
            })
            .collect();
        QuantizedMlp { layers, activations: mlp.layers().iter().map(|l| l.activation).collect() }
    }

    /// Reconstructs an FP32 model from the quantized weights (for
    /// evaluation; a real INT8 datapath would run the integer values
    /// directly).
    pub fn dequantize(&self) -> Mlp {
        let layers = self
            .layers
            .iter()
            .zip(&self.activations)
            .map(|(l, &activation)| {
                let data: Vec<f32> = l.q.iter().map(|&q| f32::from(q) * l.scale).collect();
                Dense {
                    w: crate::matrix::Matrix::from_vec(l.rows, l.cols, data),
                    b: l.bias.clone(),
                    activation,
                }
            })
            .collect();
        Mlp::from_layers(layers)
    }

    /// Storage for the quantized weights in bytes (1 per weight + 4 per
    /// bias + 4 per layer scale).
    pub fn weight_bytes(&self) -> u64 {
        self.layers.iter().map(|l| l.q.len() as u64 + 4 * l.bias.len() as u64 + 4).sum()
    }

    /// Number of non-zero quantized weights (sparsity survives
    /// quantization: a zero weight quantizes to zero).
    pub fn nonzero_weights(&self) -> u64 {
        self.layers.iter().map(|l| l.q.iter().filter(|q| **q != 0).count() as u64).sum()
    }

    /// The per-layer quantization data.
    pub fn layers(&self) -> &[QuantizedLayer] {
        &self.layers
    }

    /// Batch forward pass directly on the quantized weights.
    pub fn forward(&self, x: &Matrix) -> Matrix {
        let mut cache = ForwardCache::empty();
        self.forward_into(x, &mut cache);
        cache.activations.pop().expect("cache holds the output")
    }

    /// [`QuantizedMlp::forward`] into a reusable cache — the INT8 datapath
    /// the ASIC estimate models: integer weights accumulate per dot product
    /// and the FP32 `scale` is applied once per output, instead of
    /// rescaling every weight up front as [`QuantizedMlp::dequantize`]
    /// does. (The two paths agree to within quantization rounding, not bit
    /// for bit: dequantize-then-multiply rounds each weight separately.)
    ///
    /// # Panics
    ///
    /// Panics if `x` does not match the first layer's input width.
    pub fn forward_into(&self, x: &Matrix, cache: &mut ForwardCache) {
        assert_eq!(x.cols(), self.layers[0].cols, "input width mismatch");
        let input = cache.input_mut();
        input.reshape(x.rows(), x.cols());
        input.as_mut_slice().copy_from_slice(x.as_slice());
        cache.activations.resize(self.layers.len() + 1, Matrix::zeros(0, 0));
        for (l, (layer, &activation)) in self.layers.iter().zip(&self.activations).enumerate() {
            let (before, after) = cache.activations.split_at_mut(l + 1);
            let (h, out) = (&before[l], &mut after[0]);
            out.reshape(h.rows(), layer.rows);
            for i in 0..h.rows() {
                let hrow = h.row(i);
                for j in 0..layer.rows {
                    let qrow = &layer.q[j * layer.cols..(j + 1) * layer.cols];
                    let mut acc = 0.0f32;
                    for (&q, &v) in qrow.iter().zip(hrow) {
                        acc += f32::from(q) * v;
                    }
                    let mut y = acc * layer.scale + layer.bias[j];
                    if activation == Activation::Relu {
                        y = y.max(0.0);
                    }
                    out.row_mut(i)[j] = y;
                }
            }
        }
    }

    /// Single-sample forward pass on the quantized weights.
    pub fn forward_one(&self, x: &[f32]) -> Vec<f32> {
        let mut scratch = InferScratch::new();
        self.forward_one_into(x, &mut scratch).to_vec()
    }

    /// [`QuantizedMlp::forward_one`] through reusable scratch buffers —
    /// allocation-free once warm.
    pub fn forward_one_into<'s>(&self, x: &[f32], scratch: &'s mut InferScratch) -> &'s [f32] {
        scratch.a.clear();
        scratch.a.extend_from_slice(x);
        for (layer, &activation) in self.layers.iter().zip(&self.activations) {
            scratch.b.clear();
            for j in 0..layer.rows {
                let qrow = &layer.q[j * layer.cols..(j + 1) * layer.cols];
                let mut acc = 0.0f32;
                for (&q, &v) in qrow.iter().zip(&scratch.a) {
                    acc += f32::from(q) * v;
                }
                let mut y = acc * layer.scale + layer.bias[j];
                if activation == Activation::Relu {
                    y = y.max(0.0);
                }
                scratch.b.push(y);
            }
            std::mem::swap(&mut scratch.a, &mut scratch.b);
        }
        &scratch.a
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;
    use crate::prune::prune_magnitude;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model() -> Mlp {
        let mut rng = StdRng::seed_from_u64(3);
        Mlp::new(&[5, 12, 6], &mut rng)
    }

    #[test]
    fn roundtrip_error_is_bounded_by_scale() {
        let mlp = model();
        let q = QuantizedMlp::quantize(&mlp);
        let deq = q.dequantize();
        for (orig, layer) in mlp.layers().iter().zip(deq.layers()) {
            let max = orig.w.as_slice().iter().fold(0.0f32, |a, v| a.max(v.abs()));
            let step = max / 127.0;
            for (a, b) in orig.w.as_slice().iter().zip(layer.w.as_slice()) {
                assert!((a - b).abs() <= step / 2.0 + 1e-6);
            }
        }
    }

    #[test]
    fn forward_outputs_stay_close() {
        let mlp = model();
        let deq = QuantizedMlp::quantize(&mlp).dequantize();
        let x = Matrix::from_rows(&[&[0.2, -0.4, 0.9, 0.0, -1.1]]);
        let a = mlp.forward(&x);
        let b = deq.forward(&x);
        for (u, v) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((u - v).abs() < 0.15, "{u} vs {v}");
        }
    }

    #[test]
    fn direct_forward_tracks_dequantized_forward() {
        let mlp = model();
        let q = QuantizedMlp::quantize(&mlp);
        let deq = q.dequantize();
        let x = Matrix::from_rows(&[&[0.2, -0.4, 0.9, 0.0, -1.1], &[1.0, 1.0, -1.0, 0.3, 0.0]]);
        let direct = q.forward(&x);
        let via_deq = deq.forward(&x);
        assert_eq!((direct.rows(), direct.cols()), (2, 6));
        for (a, b) in direct.as_slice().iter().zip(via_deq.as_slice()) {
            // Scale-after-sum vs scale-per-weight: tiny rounding drift only.
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
        let mut scratch = InferScratch::new();
        let single = q.forward_one_into(x.row(0), &mut scratch).to_vec();
        assert_eq!(single, direct.row(0), "single-sample path matches batch");
        assert_eq!(q.forward_one(x.row(0)), single);
    }

    #[test]
    fn sparsity_survives_quantization() {
        let mut mlp = model();
        prune_magnitude(&mut mlp, 0.6);
        let q = QuantizedMlp::quantize(&mlp);
        assert_eq!(q.nonzero_weights(), mlp.nonzero_weights());
    }

    #[test]
    fn storage_is_a_quarter_of_fp32() {
        let mlp = model();
        let q = QuantizedMlp::quantize(&mlp);
        let fp32_bytes = mlp.weight_count() * 4;
        assert!(q.weight_bytes() < fp32_bytes / 2, "INT8 must at least halve storage");
    }

    #[test]
    fn zero_layer_quantizes_without_nan() {
        let mut mlp = model();
        mlp.layers_mut()[0].w.map_inplace(|_| 0.0);
        let q = QuantizedMlp::quantize(&mlp);
        let deq = q.dequantize();
        assert!(deq.layers()[0].w.as_slice().iter().all(|v| *v == 0.0));
    }
}
