//! Evaluation metrics: classification accuracy and MAPE — the two numbers
//! the paper reports for the Decision-maker and Calibrator (Table II).

use crate::matrix::Matrix;

/// Index of the largest logit in a row.
///
/// # Panics
///
/// Panics on an empty slice.
pub fn argmax(row: &[f32]) -> usize {
    assert!(!row.is_empty(), "argmax of an empty slice");
    row.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).map(|(i, _)| i).expect("non-empty")
}

/// Fraction of rows whose argmax equals the label, in [0, 1].
///
/// # Panics
///
/// Panics if row counts mismatch or the batch is empty.
pub fn accuracy(logits: &Matrix, labels: &[usize]) -> f64 {
    assert_eq!(logits.rows(), labels.len(), "one label per row");
    assert!(!labels.is_empty(), "accuracy of an empty batch");
    let correct = labels.iter().enumerate().filter(|(i, &l)| argmax(logits.row(*i)) == l).count();
    correct as f64 / labels.len() as f64
}

/// Mean absolute percentage error of the first output column, in percent.
/// Targets with magnitude below `1e-6` are skipped (MAPE is undefined at 0).
///
/// # Panics
///
/// Panics if row counts mismatch or no target is usable.
pub fn mape(outputs: &Matrix, targets: &[f32]) -> f64 {
    mape_counted(outputs, targets).0
}

/// [`mape`] that also reports how many near-zero targets were skipped, so
/// callers can see when the metric silently covers only part of the batch.
/// The skip count is additionally recorded on the
/// `tinynn.mape.skipped_targets` counter in the metrics registry.
///
/// # Panics
///
/// Panics if row counts mismatch or no target is usable.
pub fn mape_counted(outputs: &Matrix, targets: &[f32]) -> (f64, usize) {
    assert_eq!(outputs.rows(), targets.len(), "one target per row");
    let mut total = 0.0f64;
    let mut count = 0usize;
    let mut skipped = 0usize;
    for (i, &t) in targets.iter().enumerate() {
        if t.abs() < 1e-6 {
            skipped += 1;
            continue;
        }
        let y = outputs.row(i)[0];
        total += ((y - t).abs() / t.abs()) as f64;
        count += 1;
    }
    assert!(count > 0, "MAPE needs at least one non-zero target");
    obs::counter!("tinynn.mape.skipped_targets").inc(skipped as u64);
    (100.0 * total / count as f64, skipped)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn argmax_picks_largest() {
        assert_eq!(argmax(&[0.1, 0.9, 0.5]), 1);
        assert_eq!(argmax(&[3.0]), 0);
    }

    #[test]
    fn accuracy_counts_matches() {
        let logits = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 0.0]]);
        assert!((accuracy(&logits, &[0, 1, 1]) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(accuracy(&logits, &[0, 1, 0]), 1.0);
    }

    #[test]
    fn mape_known_value() {
        let out = Matrix::from_rows(&[&[110.0], &[90.0]]);
        // |10|/100 + |-10|/100 over 2 = 10%.
        assert!((mape(&out, &[100.0, 100.0]) - 10.0).abs() < 1e-5);
    }

    #[test]
    fn mape_skips_zero_targets() {
        let out = Matrix::from_rows(&[&[5.0], &[110.0]]);
        assert!((mape(&out, &[0.0, 100.0]) - 10.0).abs() < 1e-5);
    }

    #[test]
    fn mape_counted_reports_skipped_rows() {
        let out = Matrix::from_rows(&[&[5.0], &[110.0], &[7.0]]);
        let (value, skipped) = mape_counted(&out, &[0.0, 100.0, 5e-7]);
        assert!((value - 10.0).abs() < 1e-5);
        assert_eq!(skipped, 2);
        let (_, none_skipped) = mape_counted(&out, &[10.0, 100.0, 1.0]);
        assert_eq!(none_skipped, 0);
    }

    #[test]
    #[should_panic(expected = "non-zero target")]
    fn all_zero_targets_rejected() {
        let out = Matrix::from_rows(&[&[5.0]]);
        mape(&out, &[0.0]);
    }
}

/// Confusion matrix: `result[truth][predicted]` counts, using argmax
/// predictions.
///
/// # Panics
///
/// Panics if row counts mismatch or a label is out of range.
pub fn confusion_matrix(logits: &Matrix, labels: &[usize], classes: usize) -> Vec<Vec<usize>> {
    assert_eq!(logits.rows(), labels.len(), "one label per row");
    let mut m = vec![vec![0usize; classes]; classes];
    for (i, &truth) in labels.iter().enumerate() {
        assert!(truth < classes, "label {truth} out of range for {classes} classes");
        let predicted = argmax(logits.row(i)).min(classes - 1);
        m[truth][predicted] += 1;
    }
    m
}

/// Mean absolute class distance `|predicted - truth|` — the natural error
/// metric when classes are *ordered* (as DVFS operating points are): a
/// near-miss to an adjacent point is far cheaper than a jump across the
/// table, which plain accuracy cannot express.
///
/// # Panics
///
/// Panics if row counts mismatch or the batch is empty.
pub fn mean_class_distance(logits: &Matrix, labels: &[usize]) -> f64 {
    assert_eq!(logits.rows(), labels.len(), "one label per row");
    assert!(!labels.is_empty(), "mean class distance of an empty batch");
    let total: usize =
        labels.iter().enumerate().map(|(i, &l)| argmax(logits.row(i)).abs_diff(l)).sum();
    total as f64 / labels.len() as f64
}

#[cfg(test)]
mod ordinal_tests {
    use super::*;

    fn logits_for(preds: &[usize], classes: usize) -> Matrix {
        let mut m = Matrix::zeros(preds.len(), classes);
        for (i, &p) in preds.iter().enumerate() {
            m.row_mut(i)[p] = 10.0;
        }
        m
    }

    #[test]
    fn confusion_matrix_counts_by_truth_and_prediction() {
        let logits = logits_for(&[0, 1, 1, 2], 3);
        let m = confusion_matrix(&logits, &[0, 1, 2, 2], 3);
        assert_eq!(m[0][0], 1);
        assert_eq!(m[1][1], 1);
        assert_eq!(m[2][1], 1, "truth 2 predicted as 1");
        assert_eq!(m[2][2], 1);
        let total: usize = m.iter().flatten().sum();
        assert_eq!(total, 4);
    }

    #[test]
    fn mean_class_distance_weights_misses_by_gap() {
        let logits = logits_for(&[0, 5, 3], 6);
        // truths: 0 (exact), 0 (off by 5), 4 (off by 1) -> mean 2.0.
        assert!((mean_class_distance(&logits, &[0, 0, 4]) - 2.0).abs() < 1e-12);
        // Perfect predictions have zero distance.
        assert_eq!(mean_class_distance(&logits, &[0, 5, 3]), 0.0);
    }
}
