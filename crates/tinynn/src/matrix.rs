//! A minimal row-major `f32` matrix.
//!
//! The SSMDVFS networks are tiny (at most 9 layers × 20 neurons), so this
//! module favors clarity and determinism over BLAS-grade performance.

use std::fmt;
use std::ops::{Index, IndexMut};

use serde::{Deserialize, Serialize};

/// A dense row-major matrix of `f32`.
///
/// # Examples
///
/// ```
/// use tinynn::Matrix;
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
/// let c = a.matmul(&b);
/// assert_eq!(c[(1, 0)], 3.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Matrix {
        assert_eq!(data.len(), rows * cols, "buffer length must equal rows*cols");
        Matrix { rows, cols, data }
    }

    /// Creates a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have unequal lengths or there are no rows.
    pub fn from_rows(rows: &[&[f32]]) -> Matrix {
        assert!(!rows.is_empty(), "a matrix needs at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "all rows must have equal length");
            data.extend_from_slice(r);
        }
        Matrix { rows: rows.len(), cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrows the flat row-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrows the flat row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Borrows row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row {r} out of range ({} rows)", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrows row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "row {r} out of range ({} rows)", self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// `self @ other` — standard matrix product.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "inner dimensions must agree: ({}x{}) @ ({}x{})",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let brow = &other.data[k * other.cols..(k + 1) * other.cols];
                let orow = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (o, &b) in orow.iter_mut().zip(brow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self @ otherᵀ`.
    ///
    /// # Panics
    ///
    /// Panics unless `self.cols == other.cols`.
    pub fn matmul_transposed(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "matmul_transposed needs matching column counts");
        let mut out = Matrix::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let arow = self.row(i);
            for j in 0..other.rows {
                let brow = other.row(j);
                let mut acc = 0.0;
                for (&a, &b) in arow.iter().zip(brow) {
                    acc += a * b;
                }
                out.data[i * other.rows + j] = acc;
            }
        }
        out
    }

    /// `selfᵀ @ other`.
    ///
    /// # Panics
    ///
    /// Panics unless `self.rows == other.rows`.
    pub fn transposed_matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "transposed_matmul needs matching row counts");
        let mut out = Matrix::zeros(self.cols, other.cols);
        for r in 0..self.rows {
            let arow = self.row(r);
            let brow = &other.data[r * other.cols..(r + 1) * other.cols];
            for (i, &a) in arow.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let orow = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (o, &b) in orow.iter_mut().zip(brow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        out
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Extracts the sub-matrix keeping only the listed columns, in order.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn select_columns(&self, cols: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(self.rows, cols.len());
        for i in 0..self.rows {
            for (j, &c) in cols.iter().enumerate() {
                assert!(c < self.cols, "column {c} out of range ({} cols)", self.cols);
                out.data[i * cols.len() + j] = self.data[i * self.cols + c];
            }
        }
        out
    }

    /// Extracts the sub-matrix keeping only the listed rows, in order.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn select_rows(&self, rows: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(rows.len(), self.cols);
        for (i, &r) in rows.iter().enumerate() {
            out.row_mut(i).copy_from_slice(self.row(r));
        }
        out
    }

    /// Appends the rows of `other`.
    ///
    /// # Panics
    ///
    /// Panics on column-count mismatch.
    pub fn vstack(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "vstack needs equal column counts");
        let mut data = self.data.clone();
        data.extend_from_slice(&other.data);
        Matrix { rows: self.rows + other.rows, cols: self.cols, data }
    }

    /// Appends the columns of `other`.
    ///
    /// # Panics
    ///
    /// Panics on row-count mismatch.
    pub fn hstack(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "hstack needs equal row counts");
        let mut out = Matrix::zeros(self.rows, self.cols + other.cols);
        for i in 0..self.rows {
            out.data[i * out.cols..i * out.cols + self.cols].copy_from_slice(self.row(i));
            out.data[i * out.cols + self.cols..(i + 1) * out.cols].copy_from_slice(other.row(i));
        }
        out
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f32;
    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of range");
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of range");
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{}:", self.rows, self.cols)?;
        for i in 0..self.rows.min(8) {
            write!(f, "  [")?;
            for j in 0..self.cols.min(12) {
                write!(f, "{:8.4} ", self.data[i * self.cols + j])?;
            }
            writeln!(f, "{}]", if self.cols > 12 { "..." } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  ...")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_identity() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let i = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0]]);
        let b = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.rows(), 1);
        assert_eq!(c.cols(), 1);
        assert_eq!(c[(0, 0)], 14.0);
    }

    #[test]
    fn transposed_variants_agree_with_explicit_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[1.0, 0.5], &[2.0, -1.0], &[0.0, 3.0]]);
        assert_eq!(a.matmul_transposed(&b), a.matmul(&b.transpose()));
        assert_eq!(a.transposed_matmul(&b), a.transpose().matmul(&b));
    }

    #[test]
    fn select_columns_and_rows() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let c = a.select_columns(&[2, 0]);
        assert_eq!(c.row(0), &[3.0, 1.0]);
        assert_eq!(c.row(1), &[6.0, 4.0]);
        let r = a.select_rows(&[1]);
        assert_eq!(r.row(0), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn stacking() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 4.0]]);
        let v = a.vstack(&b);
        assert_eq!(v.rows(), 2);
        assert_eq!(v.row(1), &[3.0, 4.0]);
        let h = a.hstack(&b);
        assert_eq!(h.cols(), 4);
        assert_eq!(h.row(0), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn map_inplace() {
        let mut a = Matrix::from_rows(&[&[-1.0, 2.0]]);
        a.map_inplace(|v| v.max(0.0));
        assert_eq!(a.row(0), &[0.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn mismatched_matmul_rejected() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_index_rejected() {
        let a = Matrix::zeros(2, 2);
        let _ = a[(2, 0)];
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;

    #[test]
    fn zeros_and_from_vec_agree() {
        let z = Matrix::zeros(3, 2);
        let v = Matrix::from_vec(3, 2, vec![0.0; 6]);
        assert_eq!(z, v);
        assert_eq!(z.rows(), 3);
        assert_eq!(z.cols(), 2);
    }

    #[test]
    fn row_accessors_are_consistent() {
        let mut m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        m.row_mut(0)[1] = 9.0;
        assert_eq!(m[(0, 1)], 9.0);
        assert_eq!(m.as_slice(), &[1.0, 9.0, 3.0, 4.0]);
    }

    #[test]
    fn matmul_with_zero_rows_shortcuts() {
        // The inner loop skips zero multipliers; the result must still be
        // exact.
        let a = Matrix::from_rows(&[&[0.0, 2.0]]);
        let b = Matrix::from_rows(&[&[5.0, 7.0], &[1.0, 1.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.row(0), &[2.0, 2.0]);
    }

    #[test]
    fn transpose_of_nonsquare() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0]]);
        let t = a.transpose();
        assert_eq!((t.rows(), t.cols()), (3, 1));
        assert_eq!(t[(2, 0)], 3.0);
    }

    #[test]
    fn display_truncates_large_matrices() {
        let big = Matrix::zeros(20, 20);
        let s = format!("{big}");
        assert!(s.contains("Matrix 20x20"));
        assert!(s.contains("..."));
    }

    #[test]
    #[should_panic(expected = "rows*cols")]
    fn from_vec_length_mismatch_rejected() {
        Matrix::from_vec(2, 2, vec![1.0; 3]);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn ragged_rows_rejected() {
        Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]);
    }
}
