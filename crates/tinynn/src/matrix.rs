//! A minimal row-major `f32` matrix.
//!
//! The SSMDVFS networks are tiny (at most 9 layers × 20 neurons), but the
//! RFE/ablation pipelines retrain them thousands of times, so the three
//! product kernels ([`Matrix::matmul`], [`Matrix::matmul_transposed`],
//! [`Matrix::transposed_matmul`]) are branch-free and blocked for cache and
//! instruction-level parallelism. Every blocked kernel accumulates each
//! output element over `k` in ascending order from `0.0`, which makes it
//! **bit-identical** to the naive reference implementations
//! ([`Matrix::matmul_naive`], [`Matrix::matmul_transposed_naive`]) — a
//! property the `tinynn` property tests enforce on random shapes. The
//! `*_into` variants write into caller-owned buffers so hot loops (training
//! epochs, controller inference) run without heap allocation.

use std::fmt;
use std::ops::{Index, IndexMut};

use serde::{Deserialize, Serialize};

/// A dense row-major matrix of `f32`.
///
/// # Examples
///
/// ```
/// use tinynn::Matrix;
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
/// let c = a.matmul(&b);
/// assert_eq!(c[(1, 0)], 3.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Matrix {
        assert_eq!(data.len(), rows * cols, "buffer length must equal rows*cols");
        Matrix { rows, cols, data }
    }

    /// Creates a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have unequal lengths or there are no rows.
    pub fn from_rows(rows: &[&[f32]]) -> Matrix {
        assert!(!rows.is_empty(), "a matrix needs at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "all rows must have equal length");
            data.extend_from_slice(r);
        }
        Matrix { rows: rows.len(), cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrows the flat row-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrows the flat row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Borrows row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row {r} out of range ({} rows)", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrows row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "row {r} out of range ({} rows)", self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Reshapes in place, reusing the existing buffer. Contents after the
    /// call are unspecified (callers are expected to overwrite them); no
    /// allocation happens unless the new shape exceeds the buffer capacity.
    pub fn reshape(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.resize(rows * cols, 0.0);
    }

    /// `self @ other` — standard matrix product.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.matmul_into(other, &mut out);
        out
    }

    /// [`Matrix::matmul`] into a caller-owned buffer (resized as needed).
    ///
    /// The kernel is branch-free (no zero-skip test — sparsity belongs to
    /// the CSR path in `tinynn::sparse`), blocks the output columns so a
    /// tile of `other` stays cache-resident across all rows of `self`, and
    /// unrolls `k` by four: the four contributions are added to the output
    /// element *sequentially*, so each output still accumulates over `k`
    /// in ascending order and the result is bit-identical to
    /// [`Matrix::matmul_naive`] — while the inner loop runs vectorizable
    /// row-wise updates instead of one serial dot-product chain.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, other.rows,
            "inner dimensions must agree: ({}x{}) @ ({}x{})",
            self.rows, self.cols, other.rows, other.cols
        );
        const JBLOCK: usize = 64;
        out.reshape(self.rows, other.cols);
        out.data.iter_mut().for_each(|v| *v = 0.0);
        let n = other.cols;
        let kk = self.cols;
        let mut j0 = 0;
        while j0 < n {
            let j1 = (j0 + JBLOCK).min(n);
            for i in 0..self.rows {
                let arow = &self.data[i * kk..(i + 1) * kk];
                let orow = &mut out.data[i * n + j0..i * n + j1];
                let mut k = 0;
                while k + 4 <= kk {
                    let (a0, a1, a2, a3) = (arow[k], arow[k + 1], arow[k + 2], arow[k + 3]);
                    let b0 = &other.data[k * n + j0..k * n + j1];
                    let b1 = &other.data[(k + 1) * n + j0..(k + 1) * n + j1];
                    let b2 = &other.data[(k + 2) * n + j0..(k + 2) * n + j1];
                    let b3 = &other.data[(k + 3) * n + j0..(k + 3) * n + j1];
                    for ((((o, &v0), &v1), &v2), &v3) in
                        orow.iter_mut().zip(b0).zip(b1).zip(b2).zip(b3)
                    {
                        let mut s = *o;
                        s += a0 * v0;
                        s += a1 * v1;
                        s += a2 * v2;
                        s += a3 * v3;
                        *o = s;
                    }
                    k += 4;
                }
                while k < kk {
                    let a = arow[k];
                    let brow = &other.data[k * n + j0..k * n + j1];
                    for (o, &b) in orow.iter_mut().zip(brow) {
                        *o += a * b;
                    }
                    k += 1;
                }
            }
            j0 = j1;
        }
    }

    /// Reference `self @ other`: the textbook triple loop, kept as the
    /// ground truth the blocked kernel is property-tested against.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul_naive(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "inner dimensions must agree: ({}x{}) @ ({}x{})",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for j in 0..other.cols {
                let mut acc = 0.0f32;
                for k in 0..self.cols {
                    acc += self.data[i * self.cols + k] * other.data[k * other.cols + j];
                }
                out.data[i * other.cols + j] = acc;
            }
        }
        out
    }

    /// `self @ otherᵀ`.
    ///
    /// # Panics
    ///
    /// Panics unless `self.cols == other.cols`.
    pub fn matmul_transposed(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.matmul_transposed_into(other, &mut out);
        out
    }

    /// [`Matrix::matmul_transposed`] into a caller-owned buffer.
    ///
    /// This is the dot-product-form kernel (`x @ Wᵀ` with weights stored
    /// `out × in`): four rows of `other` are processed per pass so the dot
    /// products run as four independent accumulator chains instead of one
    /// serial reduction. Each accumulator still sums over `k` in ascending
    /// order from `0.0`, so the result is bit-identical to
    /// [`Matrix::matmul_transposed_naive`] — and to
    /// `self.matmul(&other.transpose())`, which is how the batched forward
    /// pass computes the same product through the faster
    /// [`Matrix::matmul_into`] kernel.
    ///
    /// # Panics
    ///
    /// Panics unless `self.cols == other.cols`.
    pub fn matmul_transposed_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(self.cols, other.cols, "matmul_transposed needs matching column counts");
        let n = other.rows;
        let k = self.cols;
        out.reshape(self.rows, n);
        for i in 0..self.rows {
            let arow = &self.data[i * k..(i + 1) * k];
            let orow = &mut out.data[i * n..(i + 1) * n];
            let mut j = 0;
            while j + 4 <= n {
                let b0 = &other.data[j * k..(j + 1) * k];
                let b1 = &other.data[(j + 1) * k..(j + 2) * k];
                let b2 = &other.data[(j + 2) * k..(j + 3) * k];
                let b3 = &other.data[(j + 3) * k..(j + 4) * k];
                let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
                for ((((&a, &v0), &v1), &v2), &v3) in arow.iter().zip(b0).zip(b1).zip(b2).zip(b3) {
                    s0 += a * v0;
                    s1 += a * v1;
                    s2 += a * v2;
                    s3 += a * v3;
                }
                orow[j] = s0;
                orow[j + 1] = s1;
                orow[j + 2] = s2;
                orow[j + 3] = s3;
                j += 4;
            }
            while j < n {
                let brow = &other.data[j * k..(j + 1) * k];
                let mut acc = 0.0f32;
                for (&a, &b) in arow.iter().zip(brow) {
                    acc += a * b;
                }
                orow[j] = acc;
                j += 1;
            }
        }
    }

    /// Reference `self @ otherᵀ`: one serial dot product per output.
    ///
    /// # Panics
    ///
    /// Panics unless `self.cols == other.cols`.
    pub fn matmul_transposed_naive(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "matmul_transposed needs matching column counts");
        let mut out = Matrix::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let arow = self.row(i);
            for j in 0..other.rows {
                let brow = other.row(j);
                let mut acc = 0.0;
                for (&a, &b) in arow.iter().zip(brow) {
                    acc += a * b;
                }
                out.data[i * other.rows + j] = acc;
            }
        }
        out
    }

    /// `selfᵀ @ other`.
    ///
    /// # Panics
    ///
    /// Panics unless `self.rows == other.rows`.
    pub fn transposed_matmul(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.transposed_matmul_into(other, &mut out);
        out
    }

    /// [`Matrix::transposed_matmul`] into a caller-owned buffer.
    ///
    /// This is the backward-pass kernel (`deltaᵀ @ input` for `dW`); like
    /// [`Matrix::matmul_into`] it is branch-free with a vectorizable inner
    /// loop and an `r`-unroll of four whose contributions are added
    /// sequentially, so each output accumulates its `r` terms in ascending
    /// order.
    ///
    /// # Panics
    ///
    /// Panics unless `self.rows == other.rows`.
    pub fn transposed_matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(self.rows, other.rows, "transposed_matmul needs matching row counts");
        let n = other.cols;
        let m = self.cols;
        out.reshape(m, n);
        out.data.iter_mut().for_each(|v| *v = 0.0);
        let mut r = 0;
        while r + 4 <= self.rows {
            let b0 = &other.data[r * n..(r + 1) * n];
            let b1 = &other.data[(r + 1) * n..(r + 2) * n];
            let b2 = &other.data[(r + 2) * n..(r + 3) * n];
            let b3 = &other.data[(r + 3) * n..(r + 4) * n];
            for i in 0..m {
                let a0 = self.data[r * m + i];
                let a1 = self.data[(r + 1) * m + i];
                let a2 = self.data[(r + 2) * m + i];
                let a3 = self.data[(r + 3) * m + i];
                let orow = &mut out.data[i * n..(i + 1) * n];
                for ((((o, &v0), &v1), &v2), &v3) in orow.iter_mut().zip(b0).zip(b1).zip(b2).zip(b3)
                {
                    let mut s = *o;
                    s += a0 * v0;
                    s += a1 * v1;
                    s += a2 * v2;
                    s += a3 * v3;
                    *o = s;
                }
            }
            r += 4;
        }
        while r < self.rows {
            let arow = &self.data[r * m..(r + 1) * m];
            let brow = &other.data[r * n..(r + 1) * n];
            for (i, &a) in arow.iter().enumerate() {
                let orow = &mut out.data[i * n..(i + 1) * n];
                for (o, &b) in orow.iter_mut().zip(brow) {
                    *o += a * b;
                }
            }
            r += 1;
        }
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.transpose_into(&mut out);
        out
    }

    /// [`Matrix::transpose`] into a caller-owned buffer — lets the batched
    /// forward pass re-lay the weights once per call and run the product
    /// through the fast [`Matrix::matmul_into`] kernel without allocating.
    pub fn transpose_into(&self, out: &mut Matrix) {
        out.reshape(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Extracts the sub-matrix keeping only the listed columns, in order.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn select_columns(&self, cols: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(self.rows, cols.len());
        for i in 0..self.rows {
            for (j, &c) in cols.iter().enumerate() {
                assert!(c < self.cols, "column {c} out of range ({} cols)", self.cols);
                out.data[i * cols.len() + j] = self.data[i * self.cols + c];
            }
        }
        out
    }

    /// Extracts the sub-matrix keeping only the listed rows, in order.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn select_rows(&self, rows: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.select_rows_into(rows, &mut out);
        out
    }

    /// [`Matrix::select_rows`] into a caller-owned buffer (resized as
    /// needed) — the minibatch gather of the training loop, allocation-free
    /// after warm-up.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn select_rows_into(&self, rows: &[usize], out: &mut Matrix) {
        out.reshape(rows.len(), self.cols);
        for (i, &r) in rows.iter().enumerate() {
            out.row_mut(i).copy_from_slice(self.row(r));
        }
    }

    /// Appends the rows of `other`.
    ///
    /// # Panics
    ///
    /// Panics on column-count mismatch.
    pub fn vstack(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "vstack needs equal column counts");
        let mut data = self.data.clone();
        data.extend_from_slice(&other.data);
        Matrix { rows: self.rows + other.rows, cols: self.cols, data }
    }

    /// Appends the columns of `other`.
    ///
    /// # Panics
    ///
    /// Panics on row-count mismatch.
    pub fn hstack(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "hstack needs equal row counts");
        let mut out = Matrix::zeros(self.rows, self.cols + other.cols);
        for i in 0..self.rows {
            out.data[i * out.cols..i * out.cols + self.cols].copy_from_slice(self.row(i));
            out.data[i * out.cols + self.cols..(i + 1) * out.cols].copy_from_slice(other.row(i));
        }
        out
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f32;
    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of range");
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of range");
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{}:", self.rows, self.cols)?;
        for i in 0..self.rows.min(8) {
            write!(f, "  [")?;
            for j in 0..self.cols.min(12) {
                write!(f, "{:8.4} ", self.data[i * self.cols + j])?;
            }
            writeln!(f, "{}]", if self.cols > 12 { "..." } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  ...")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_identity() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let i = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0]]);
        let b = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.rows(), 1);
        assert_eq!(c.cols(), 1);
        assert_eq!(c[(0, 0)], 14.0);
    }

    #[test]
    fn transposed_variants_agree_with_explicit_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[1.0, 0.5], &[2.0, -1.0], &[0.0, 3.0]]);
        assert_eq!(a.matmul_transposed(&b), a.matmul(&b.transpose()));
        assert_eq!(a.transposed_matmul(&b), a.transpose().matmul(&b));
    }

    #[test]
    fn select_columns_and_rows() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let c = a.select_columns(&[2, 0]);
        assert_eq!(c.row(0), &[3.0, 1.0]);
        assert_eq!(c.row(1), &[6.0, 4.0]);
        let r = a.select_rows(&[1]);
        assert_eq!(r.row(0), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn stacking() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 4.0]]);
        let v = a.vstack(&b);
        assert_eq!(v.rows(), 2);
        assert_eq!(v.row(1), &[3.0, 4.0]);
        let h = a.hstack(&b);
        assert_eq!(h.cols(), 4);
        assert_eq!(h.row(0), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn map_inplace() {
        let mut a = Matrix::from_rows(&[&[-1.0, 2.0]]);
        a.map_inplace(|v| v.max(0.0));
        assert_eq!(a.row(0), &[0.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn mismatched_matmul_rejected() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_index_rejected() {
        let a = Matrix::zeros(2, 2);
        let _ = a[(2, 0)];
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;

    #[test]
    fn zeros_and_from_vec_agree() {
        let z = Matrix::zeros(3, 2);
        let v = Matrix::from_vec(3, 2, vec![0.0; 6]);
        assert_eq!(z, v);
        assert_eq!(z.rows(), 3);
        assert_eq!(z.cols(), 2);
    }

    #[test]
    fn row_accessors_are_consistent() {
        let mut m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        m.row_mut(0)[1] = 9.0;
        assert_eq!(m[(0, 1)], 9.0);
        assert_eq!(m.as_slice(), &[1.0, 9.0, 3.0, 4.0]);
    }

    #[test]
    fn matmul_with_zero_rows_is_exact() {
        // The kernel is branch-free (no zero-skip); zero multipliers must
        // still produce the exact result.
        let a = Matrix::from_rows(&[&[0.0, 2.0]]);
        let b = Matrix::from_rows(&[&[5.0, 7.0], &[1.0, 1.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.row(0), &[2.0, 2.0]);
    }

    #[test]
    fn blocked_kernels_match_naive_references() {
        // Shapes straddling the 4-wide j-block and the 64-wide cache block.
        let mut state = 0x1234_5678u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f32) / (u32::MAX / 2) as f32 - 1.0
        };
        for &(m, k, n) in &[(1usize, 1usize, 1usize), (3, 5, 7), (8, 20, 66), (65, 3, 4)] {
            let a = Matrix::from_vec(m, k, (0..m * k).map(|_| next()).collect());
            let b = Matrix::from_vec(k, n, (0..k * n).map(|_| next()).collect());
            let bt = b.transpose();
            assert_eq!(a.matmul(&b), a.matmul_naive(&b), "matmul {m}x{k}x{n}");
            assert_eq!(
                a.matmul_transposed(&bt),
                a.matmul_transposed_naive(&bt),
                "matmul_transposed {m}x{k}x{n}"
            );
            assert_eq!(
                a.transposed_matmul(&a),
                a.transpose().matmul_naive(&a),
                "transposed_matmul {m}x{k}"
            );
        }
    }

    #[test]
    fn into_variants_reuse_buffers_across_shapes() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let mut out = Matrix::zeros(0, 0);
        a.matmul_into(&b, &mut out);
        assert_eq!(out, a.matmul_naive(&b));
        // Shrinking reuse: stale contents must not leak into the result.
        let a1 = Matrix::from_rows(&[&[2.0, 0.5]]);
        a1.matmul_into(&b, &mut out);
        assert_eq!(out, a1.matmul_naive(&b));
        a1.matmul_transposed_into(&b, &mut out);
        assert_eq!(out, a1.matmul_transposed_naive(&b));
        let mut sel = Matrix::zeros(0, 0);
        b.select_rows_into(&[1, 0], &mut sel);
        assert_eq!(sel, b.select_rows(&[1, 0]));
    }

    #[test]
    fn transpose_of_nonsquare() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0]]);
        let t = a.transpose();
        assert_eq!((t.rows(), t.cols()), (3, 1));
        assert_eq!(t[(2, 0)], 3.0);
    }

    #[test]
    fn display_truncates_large_matrices() {
        let big = Matrix::zeros(20, 20);
        let s = format!("{big}");
        assert!(s.contains("Matrix 20x20"));
        assert!(s.contains("..."));
    }

    #[test]
    #[should_panic(expected = "rows*cols")]
    fn from_vec_length_mismatch_rejected() {
        Matrix::from_vec(2, 2, vec![1.0; 3]);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn ragged_rows_rejected() {
        Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]);
    }
}
