//! A persistent worker team for the sharded training loops.
//!
//! The minibatch gradient fan-out runs every ~100 µs, far too often to pay
//! thread spawn/join per batch (the crossbeam-scope pools used by the outer
//! pipelines spawn per call). [`TrainPool`] keeps its workers alive across
//! an entire training run — and across the dozens of retrains of an RFE or
//! compression sweep — and hands them work through a generation counter:
//! the caller publishes a task, bumps the generation, and every worker
//! (plus the caller itself) claims shard indices from a shared atomic until
//! none remain.
//!
//! Workers spin briefly on the generation counter before sleeping on a
//! condvar, so the wake latency between two back-to-back batches (separated
//! only by an optimizer step) is a few loads, not a scheduler round-trip.
//!
//! Determinism is not this module's concern — shard *scheduling* is free to
//! vary run to run. The training loops guarantee byte-identical results by
//! deriving the shard count from the batch size alone and reducing shard
//! gradients in fixed index order; the pool only decides which thread
//! computes which shard, never what is computed.

use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Iterations a worker spins on the generation counter before falling back
/// to a condvar sleep. Sized to cover the optimizer-step gap between two
/// batches of the paper-scale models (tens of microseconds).
const SPIN_ITERS: u32 = 1 << 14;

/// A lifetime-erased pointer to the caller's shard task. Protocol: the
/// pointer is published under the state mutex and never dereferenced after
/// [`TrainPool::run`] returns (run blocks until every shard completed), so
/// the erased borrow is always live while workers hold it.
#[derive(Clone, Copy)]
struct TaskPtr(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (shared calls are safe) and the run/join
// protocol above keeps it alive for as long as any worker can touch it.
unsafe impl Send for TaskPtr {}

struct TeamState {
    /// Bumped once per `run`; workers execute a generation exactly once.
    generation: u64,
    /// Shard count of the current generation.
    shards: usize,
    /// The current generation's task, if one is in flight.
    task: Option<TaskPtr>,
    /// Shards finished so far in the current generation.
    completed: usize,
    /// First panic payload raised by a shard, resumed by the caller.
    panic: Option<Box<dyn std::any::Any + Send>>,
    shutdown: bool,
}

struct Inner {
    state: Mutex<TeamState>,
    /// Wakes sleeping workers when a generation is published or on
    /// shutdown.
    wake: Condvar,
    /// Wakes the caller when the last shard of a generation completes.
    done: Condvar,
    /// Mirror of `state.generation` for the workers' lock-free spin wait.
    generation: AtomicU64,
    /// Mirror of `state.shutdown`, likewise.
    shutdown: AtomicBool,
    /// Claim word: the current generation (truncated) in the high 32 bits,
    /// the next unclaimed shard index in the low 32. Tagging claims with
    /// the generation makes a stale worker — one that grabbed generation
    /// G's task pointer and was then scheduled out past the end of G —
    /// fail its claim CAS instead of executing G's (now dangling) task
    /// against a newer generation's indices.
    next: AtomicU64,
}

/// High half of the claim word: the generation tag.
const CLAIM_GEN_MASK: u64 = 0xFFFF_FFFF_0000_0000;

/// The claim word at which generation `generation` starts (index 0).
fn claim_base(generation: u64) -> u64 {
    (generation as u32 as u64) << 32
}

/// A persistent thread team for data-parallel training (see the module
/// docs). `jobs = 1` is the serial mode: no threads are spawned and
/// [`TrainPool::run`] executes every shard inline, which is also the code
/// path the determinism proptests compare the parallel schedules against.
pub struct TrainPool {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
    jobs: usize,
}

impl std::fmt::Debug for TrainPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrainPool").field("jobs", &self.jobs).finish()
    }
}

impl TrainPool {
    /// A team of `jobs` workers (`0` = one per core). The calling thread
    /// participates in every run, so `jobs - 1` threads are spawned.
    pub fn new(jobs: usize) -> TrainPool {
        let jobs = if jobs == 0 {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        } else {
            jobs
        };
        let inner = Arc::new(Inner {
            state: Mutex::new(TeamState {
                generation: 0,
                shards: 0,
                task: None,
                completed: 0,
                panic: None,
                shutdown: false,
            }),
            wake: Condvar::new(),
            done: Condvar::new(),
            generation: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            next: AtomicU64::new(0),
        });
        let workers = (1..jobs)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("tinynn-train-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawning a training worker must succeed")
            })
            .collect();
        TrainPool { inner, workers, jobs }
    }

    /// The serial pool: no threads, every shard runs inline on the caller.
    pub fn serial() -> TrainPool {
        TrainPool::new(1)
    }

    /// Worker count (including the calling thread).
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Executes `task(0..shards)` across the team and blocks until every
    /// shard has finished. Shards may run in any order on any worker; the
    /// caller claims shards too. Panics from shards are caught, counted as
    /// completed (so the team never deadlocks) and the first payload is
    /// re-raised here once the generation drains.
    ///
    /// # Panics
    ///
    /// Re-raises the first panic any shard raised.
    pub fn run(&self, shards: usize, task: &(dyn Fn(usize) + Sync)) {
        if self.workers.is_empty() || shards <= 1 {
            for i in 0..shards {
                task(i);
            }
            return;
        }
        // Erase the borrow's lifetime; `run` does not return until every
        // worker is done with the pointer (see TaskPtr).
        let ptr = task as *const (dyn Fn(usize) + Sync);
        #[allow(clippy::missing_transmute_annotations)]
        let ptr: TaskPtr = TaskPtr(unsafe { std::mem::transmute(ptr) });
        let generation;
        {
            let mut st = self.inner.state.lock().expect("train pool state");
            debug_assert!(st.task.is_none(), "TrainPool::run is not reentrant");
            st.task = Some(ptr);
            st.shards = shards;
            st.completed = 0;
            st.panic = None;
            st.generation += 1;
            generation = st.generation;
            // The claim word must be re-armed before the generation becomes
            // visible to spinning workers (Release pairs with their Acquire
            // load of `generation`).
            self.inner.next.store(claim_base(generation), Ordering::Release);
            self.inner.generation.store(generation, Ordering::Release);
        }
        self.inner.wake.notify_all();
        claim_shards(&self.inner, task, shards, generation);
        let mut st = self.inner.state.lock().expect("train pool state");
        while st.completed < st.shards {
            st = self.inner.done.wait(st).expect("train pool state");
        }
        st.task = None;
        let payload = st.panic.take();
        drop(st);
        if let Some(p) = payload {
            panic::resume_unwind(p);
        }
    }
}

impl Drop for TrainPool {
    fn drop(&mut self) {
        {
            let mut st = self.inner.state.lock().expect("train pool state");
            st.shutdown = true;
            self.inner.shutdown.store(true, Ordering::Release);
        }
        self.inner.wake.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Claims and executes shard indices of `generation` until none remain (or
/// the pool has moved to a newer generation), recording completions (and
/// the first panic) in the shared state. The generation-tagged CAS is what
/// keeps `task` safe to call: an index below `shards` can only be claimed
/// while its generation is still in flight, and `run` cannot return (and
/// so the task cannot die) until every claimed index is counted complete.
fn claim_shards(inner: &Inner, task: &(dyn Fn(usize) + Sync), shards: usize, generation: u64) {
    let base = claim_base(generation);
    let mut cur = inner.next.load(Ordering::Acquire);
    loop {
        let i = loop {
            if cur & CLAIM_GEN_MASK != base {
                // A newer generation re-armed the claim word; `task` may be
                // gone — never dereference it again.
                return;
            }
            match inner.next.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => break (cur & !CLAIM_GEN_MASK) as usize,
                Err(actual) => cur = actual,
            }
        };
        cur += 1;
        if i >= shards {
            return;
        }
        let result = panic::catch_unwind(AssertUnwindSafe(|| task(i)));
        let mut st = inner.state.lock().expect("train pool state");
        if let Err(p) = result {
            if st.panic.is_none() {
                st.panic = Some(p);
            }
        }
        st.completed += 1;
        if st.completed == st.shards {
            inner.done.notify_all();
        }
    }
}

fn worker_loop(inner: &Inner) {
    let mut seen = 0u64;
    loop {
        // Fast path: spin on the atomic mirrors so a batch that arrives
        // right after the previous one (the common training cadence) is
        // picked up without a scheduler wake.
        let mut spins = 0u32;
        loop {
            if inner.shutdown.load(Ordering::Acquire) {
                return;
            }
            if inner.generation.load(Ordering::Acquire) != seen || spins >= SPIN_ITERS {
                break;
            }
            spins += 1;
            std::hint::spin_loop();
        }
        let (task, shards) = {
            let mut st = inner.state.lock().expect("train pool state");
            loop {
                if st.shutdown {
                    return;
                }
                if st.generation != seen {
                    seen = st.generation;
                    match st.task {
                        Some(t) => break (t, st.shards),
                        // The generation already drained (caller finished
                        // every shard before this worker woke); skip it.
                        None => continue,
                    }
                }
                st = inner.wake.wait(st).expect("train pool state");
            }
        };
        // SAFETY: generation-tagged claims (see `claim_shards`) ensure the
        // pointer is only dereferenced while its generation is in flight,
        // and the caller blocks in `run` until every claimed shard is
        // counted complete — so the pointee outlives every use.
        let task = unsafe { &*task.0 };
        claim_shards(inner, task, shards, seen);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn serial_pool_runs_inline() {
        let pool = TrainPool::serial();
        assert_eq!(pool.jobs(), 1);
        let hits = AtomicU32::new(0);
        pool.run(5, &|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn every_shard_runs_exactly_once() {
        let pool = TrainPool::new(4);
        for shards in [1usize, 2, 3, 7, 16, 64] {
            let marks: Vec<AtomicU32> = (0..shards).map(|_| AtomicU32::new(0)).collect();
            pool.run(shards, &|s| {
                marks[s].fetch_add(1, Ordering::Relaxed);
            });
            for (s, m) in marks.iter().enumerate() {
                assert_eq!(m.load(Ordering::Relaxed), 1, "shard {s} of {shards}");
            }
        }
    }

    #[test]
    fn many_generations_back_to_back() {
        // The cadence of a real training run: hundreds of tiny fan-outs
        // with no pause in between.
        let pool = TrainPool::new(3);
        let total = AtomicU32::new(0);
        for _ in 0..500 {
            pool.run(8, &|_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(total.load(Ordering::Relaxed), 4_000);
    }

    #[test]
    fn shard_panic_propagates_and_pool_survives() {
        let pool = TrainPool::new(2);
        let caught = panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(4, &|s| {
                if s == 2 {
                    panic!("shard exploded");
                }
            });
        }));
        let payload = caught.expect_err("the shard panic must propagate");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "shard exploded");
        // The team stays usable after a panicked generation.
        let hits = AtomicU32::new(0);
        pool.run(4, &|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn zero_jobs_means_one_per_core() {
        let pool = TrainPool::new(0);
        assert!(pool.jobs() >= 1);
        let hits = AtomicU32::new(0);
        pool.run(10, &|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 10);
    }
}
