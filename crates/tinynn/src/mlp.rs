//! Multi-layer perceptrons: layers, forward/backward passes, FLOPs
//! accounting.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::matrix::Matrix;

/// The activation applied after a layer's affine transform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activation {
    /// Rectified linear unit (the paper's choice for every hidden layer).
    Relu,
    /// No activation (output layers).
    Identity,
}

impl Activation {
    fn apply(self, m: &mut Matrix) {
        if self == Activation::Relu {
            m.map_inplace(|v| v.max(0.0));
        }
    }

    /// d(activation)/d(pre-activation), given the *post*-activation value.
    fn grad_from_output(self, out: f32) -> f32 {
        match self {
            Activation::Relu => {
                if out > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Identity => 1.0,
        }
    }
}

/// One fully connected layer: `y = act(x @ Wᵀ + b)`.
///
/// Weights are stored as an `out × in` matrix so that row `j` is neuron
/// `j`'s incoming weight vector — the unit the paper's neuron-level pruning
/// inspects.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dense {
    /// Weight matrix, `out × in`.
    pub w: Matrix,
    /// Bias vector, length `out`.
    pub b: Vec<f32>,
    /// Post-affine activation.
    pub activation: Activation,
}

impl Dense {
    /// Creates a layer with He-initialized weights.
    pub fn new(input: usize, output: usize, activation: Activation, rng: &mut impl Rng) -> Dense {
        let scale = (2.0 / input as f32).sqrt();
        let mut w = Matrix::zeros(output, input);
        for v in w.as_mut_slice() {
            // Uniform He-style init in [-scale, scale] * sqrt(3) keeps the
            // variance of a uniform distribution equal to the He target.
            *v = rng.gen_range(-scale * 1.732..scale * 1.732);
        }
        Dense { w, b: vec![0.0; output], activation }
    }

    /// Input width.
    pub fn input_size(&self) -> usize {
        self.w.cols()
    }

    /// Output width.
    pub fn output_size(&self) -> usize {
        self.w.rows()
    }

    /// Forward pass over a batch (rows are samples).
    pub fn forward(&self, x: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.forward_into(x, &mut out);
        out
    }

    /// [`Dense::forward`] into a caller-owned buffer (resized as needed);
    /// the batched kernel behind [`Mlp::forward_into`] and the quantized /
    /// controller hot paths.
    pub fn forward_into(&self, x: &Matrix, out: &mut Matrix) {
        x.matmul_transposed_into(&self.w, out);
        self.finish_affine(out);
    }

    /// [`Dense::forward_into`] through a caller-owned transposed-weights
    /// scratch: `w` is re-laid as `in × out` into `wt`, and the product
    /// runs through the fast row-streaming [`Matrix::matmul_into`] kernel.
    /// Both kernels accumulate each output over `k` in ascending order, so
    /// the result is bit-identical to [`Dense::forward_into`]; this is the
    /// batched hot path ([`Mlp::forward_cached`]) where the transpose cost
    /// is amortized over the whole minibatch.
    pub fn forward_transposed_into(&self, x: &Matrix, wt: &mut Matrix, out: &mut Matrix) {
        self.w.transpose_into(wt);
        x.matmul_into(wt, out);
        self.finish_affine(out);
    }

    fn finish_affine(&self, out: &mut Matrix) {
        for i in 0..out.rows() {
            let row = out.row_mut(i);
            for (v, b) in row.iter_mut().zip(&self.b) {
                *v += b;
            }
        }
        self.activation.apply(out);
    }

    /// Single-sample forward pass into a caller-owned buffer. Produces the
    /// same values as the batched path (each output is one ascending-`k`
    /// dot product).
    pub fn forward_vec_into(&self, x: &[f32], out: &mut Vec<f32>) {
        debug_assert_eq!(x.len(), self.input_size(), "input width mismatch");
        out.clear();
        for j in 0..self.w.rows() {
            let wrow = self.w.row(j);
            let mut acc = 0.0f32;
            for (&wv, &xv) in wrow.iter().zip(x) {
                acc += wv * xv;
            }
            acc += self.b[j];
            if self.activation == Activation::Relu {
                acc = acc.max(0.0);
            }
            out.push(acc);
        }
    }

    /// Dense FLOPs for one inference: a multiply and an add per weight.
    pub fn flops(&self) -> u64 {
        2 * (self.w.rows() * self.w.cols()) as u64
    }

    /// FLOPs counting only non-zero weights (what a sparse accelerator,
    /// like the paper's ASIC module, would execute).
    pub fn sparse_flops(&self) -> u64 {
        2 * self.w.as_slice().iter().filter(|v| **v != 0.0).count() as u64
    }
}

/// Gradients for every layer of an [`Mlp`], in layer order.
#[derive(Debug, Clone, PartialEq)]
pub struct Gradients {
    /// Per-layer `(dW, db)`.
    pub layers: Vec<(Matrix, Vec<f32>)>,
}

impl Gradients {
    /// An empty gradient set whose buffers grow on first use (see
    /// [`Mlp::backward_into`]).
    pub fn empty() -> Gradients {
        Gradients { layers: Vec::new() }
    }

    /// Overwrites `self` with `src`, reshaping buffers in place — the seed
    /// of the fixed-order shard reduction (shard 0's gradients land here,
    /// then the remaining shards [`Gradients::accumulate_into`] on top).
    pub fn assign_from(&mut self, src: &Gradients) {
        if self.layers.len() != src.layers.len() {
            self.layers.resize(src.layers.len(), (Matrix::zeros(0, 0), Vec::new()));
        }
        for ((dw, db), (sw, sb)) in self.layers.iter_mut().zip(&src.layers) {
            dw.reshape(sw.rows(), sw.cols());
            dw.as_mut_slice().copy_from_slice(sw.as_slice());
            db.clear();
            db.extend_from_slice(sb);
        }
    }

    /// Adds `self` element-wise into `dst`. Callers reduce per-shard
    /// gradients by folding shards in ascending index order — a fixed-order
    /// reduction, so the summed gradient is a pure function of the shard
    /// partition and never of which worker computed which shard.
    ///
    /// # Panics
    ///
    /// Panics if the layer shapes differ.
    pub fn accumulate_into(&self, dst: &mut Gradients) {
        assert_eq!(self.layers.len(), dst.layers.len(), "gradient layer count mismatch");
        for ((sw, sb), (dw, db)) in self.layers.iter().zip(&mut dst.layers) {
            assert_eq!((sw.rows(), sw.cols()), (dw.rows(), dw.cols()), "gradient shape mismatch");
            assert_eq!(sb.len(), db.len(), "bias gradient length mismatch");
            for (d, &s) in dw.as_mut_slice().iter_mut().zip(sw.as_slice()) {
                *d += s;
            }
            for (d, &s) in db.iter_mut().zip(sb) {
                *d += s;
            }
        }
    }

    /// Divides every gradient element by `n` — the final batch-mean step of
    /// the shard reduction (shards accumulate raw per-sample sums).
    pub fn div_scalar(&mut self, n: f32) {
        for (dw, db) in &mut self.layers {
            dw.map_inplace(|v| v / n);
            for b in db.iter_mut() {
                *b /= n;
            }
        }
    }
}

/// Cached intermediate activations from [`Mlp::forward_train`] /
/// [`Mlp::forward_into`]. Reusable: the per-layer matrices are resized in
/// place, so a warm cache makes repeated forward passes allocation-free.
#[derive(Debug, Clone)]
pub struct ForwardCache {
    /// `activations[0]` is the input; `activations[i+1]` is layer `i`'s
    /// output.
    pub activations: Vec<Matrix>,
    /// Scratch for the current layer's transposed weights (`in × out`),
    /// re-laid per layer so the batched product runs through the fast
    /// [`Matrix::matmul_into`] kernel.
    pub(crate) wt: Matrix,
}

impl ForwardCache {
    /// An empty cache; buffers are created on first use.
    pub fn empty() -> ForwardCache {
        ForwardCache { activations: Vec::new(), wt: Matrix::zeros(0, 0) }
    }

    /// Mutable access to the input slot (`activations[0]`), creating it if
    /// the cache is fresh. Callers gather a minibatch directly into this
    /// buffer (e.g. via [`Matrix::select_rows_into`]) and then run
    /// [`Mlp::forward_cached`].
    pub fn input_mut(&mut self) -> &mut Matrix {
        if self.activations.is_empty() {
            self.activations.push(Matrix::zeros(0, 0));
        }
        &mut self.activations[0]
    }

    /// The network output for this pass.
    pub fn output(&self) -> &Matrix {
        self.activations.last().expect("cache always holds the input")
    }
}

/// Reusable single-sample inference buffers for [`Mlp::forward_one_into`]
/// and the sparse/quantized forward paths: two ping-pong activation vectors,
/// grown once and recycled on every call.
#[derive(Debug, Clone, Default)]
pub struct InferScratch {
    pub(crate) a: Vec<f32>,
    pub(crate) b: Vec<f32>,
}

impl InferScratch {
    /// An empty scratch; buffers are grown on first use.
    pub fn new() -> InferScratch {
        InferScratch::default()
    }
}

/// A feed-forward multi-layer perceptron.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use tinynn::{Matrix, Mlp};
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let mlp = Mlp::new(&[4, 12, 3], &mut rng);
/// assert_eq!(mlp.input_size(), 4);
/// assert_eq!(mlp.output_size(), 3);
/// let y = mlp.forward(&Matrix::zeros(2, 4));
/// assert_eq!((y.rows(), y.cols()), (2, 3));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<Dense>,
}

impl Mlp {
    /// Creates an MLP from a size list `[input, hidden..., output]`, with
    /// ReLU on every hidden layer and an identity output layer — the
    /// architecture family of the paper's Decision-maker and Calibrator.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two sizes are given or any size is zero.
    pub fn new(sizes: &[usize], rng: &mut impl Rng) -> Mlp {
        assert!(sizes.len() >= 2, "an MLP needs at least input and output sizes");
        assert!(sizes.iter().all(|&s| s > 0), "layer sizes must be positive");
        let layers = sizes
            .windows(2)
            .enumerate()
            .map(|(i, w)| {
                let act =
                    if i + 2 == sizes.len() { Activation::Identity } else { Activation::Relu };
                Dense::new(w[0], w[1], act, rng)
            })
            .collect();
        Mlp { layers }
    }

    /// Builds an MLP from explicit layers.
    ///
    /// # Panics
    ///
    /// Panics if the layer list is empty or adjacent widths mismatch.
    pub fn from_layers(layers: Vec<Dense>) -> Mlp {
        assert!(!layers.is_empty(), "an MLP needs at least one layer");
        for pair in layers.windows(2) {
            assert_eq!(
                pair[0].output_size(),
                pair[1].input_size(),
                "adjacent layer widths must agree"
            );
        }
        Mlp { layers }
    }

    /// The layers in order.
    pub fn layers(&self) -> &[Dense] {
        &self.layers
    }

    /// Mutable access to the layers (used by pruning).
    pub fn layers_mut(&mut self) -> &mut Vec<Dense> {
        &mut self.layers
    }

    /// Input width.
    pub fn input_size(&self) -> usize {
        self.layers[0].input_size()
    }

    /// Output width.
    pub fn output_size(&self) -> usize {
        self.layers.last().expect("non-empty").output_size()
    }

    /// Layer widths as `[input, hidden..., output]`.
    pub fn sizes(&self) -> Vec<usize> {
        let mut v = vec![self.input_size()];
        v.extend(self.layers.iter().map(Dense::output_size));
        v
    }

    /// Batch forward pass (rows are samples).
    pub fn forward(&self, x: &Matrix) -> Matrix {
        let mut cache = ForwardCache::empty();
        self.forward_into(x, &mut cache);
        cache.activations.pop().expect("cache holds the output")
    }

    /// Single-sample forward pass.
    pub fn forward_one(&self, x: &[f32]) -> Vec<f32> {
        let mut scratch = InferScratch::new();
        self.forward_one_into(x, &mut scratch).to_vec()
    }

    /// Single-sample forward pass through reusable scratch buffers —
    /// the controller hot path. Allocation-free once the scratch is warm;
    /// produces the same values as [`Mlp::forward_one`].
    pub fn forward_one_into<'s>(&self, x: &[f32], scratch: &'s mut InferScratch) -> &'s [f32] {
        scratch.a.clear();
        scratch.a.extend_from_slice(x);
        for layer in &self.layers {
            layer.forward_vec_into(&scratch.a, &mut scratch.b);
            std::mem::swap(&mut scratch.a, &mut scratch.b);
        }
        &scratch.a
    }

    /// Forward pass that keeps every intermediate activation for
    /// [`Mlp::backward`].
    pub fn forward_train(&self, x: &Matrix) -> ForwardCache {
        let mut cache = ForwardCache::empty();
        self.forward_into(x, &mut cache);
        cache
    }

    /// [`Mlp::forward_train`] into a reusable cache: `x` is copied into the
    /// input slot and every layer writes into a recycled activation matrix,
    /// so a warm cache runs the whole pass without heap allocation.
    pub fn forward_into(&self, x: &Matrix, cache: &mut ForwardCache) {
        let input = cache.input_mut();
        input.reshape(x.rows(), x.cols());
        input.as_mut_slice().copy_from_slice(x.as_slice());
        self.forward_cached(cache);
    }

    /// Runs the layers on whatever the caller placed in
    /// [`ForwardCache::input_mut`] — the zero-copy variant of
    /// [`Mlp::forward_into`] used by the training loop, which gathers each
    /// minibatch directly into the cache's input slot.
    ///
    /// # Panics
    ///
    /// Panics if the cache input is missing or has the wrong width.
    pub fn forward_cached(&self, cache: &mut ForwardCache) {
        assert!(!cache.activations.is_empty(), "fill ForwardCache::input_mut first");
        assert_eq!(cache.activations[0].cols(), self.input_size(), "input width mismatch");
        cache.activations.resize(self.layers.len() + 1, Matrix::zeros(0, 0));
        for (l, layer) in self.layers.iter().enumerate() {
            let (before, after) = cache.activations.split_at_mut(l + 1);
            layer.forward_transposed_into(&before[l], &mut cache.wt, &mut after[0]);
        }
    }

    /// Micro-batch forward pass for the decision-serving path: runs every
    /// row of `x` through the batched kernel, reusing the cache's
    /// transposed-weight scratch and activation matrices, and returns the
    /// output batch (one row per input row).
    ///
    /// Bit-identical to running each row through [`Mlp::forward_one_into`]:
    /// the batched kernel ([`Dense::forward_transposed_into`]) and the
    /// vector kernel ([`Dense::forward_vec_into`]) both accumulate each
    /// output over `k` in ascending order, so batching requests never
    /// changes a single bit of any decision — enforced by proptest.
    pub fn forward_batch_into<'c>(&self, x: &Matrix, cache: &'c mut ForwardCache) -> &'c Matrix {
        self.forward_into(x, cache);
        cache.output()
    }

    /// Backpropagates `d_out` (gradient of the loss w.r.t. the network
    /// output, same shape as the output batch) through the cached pass.
    pub fn backward(&self, cache: &ForwardCache, d_out: &Matrix) -> Gradients {
        let mut grads = Gradients::empty();
        let mut delta = d_out.clone();
        let mut delta_tmp = Matrix::zeros(0, 0);
        self.backward_into(cache, &mut delta, &mut delta_tmp, &mut grads);
        grads
    }

    /// [`Mlp::backward`] through caller-owned buffers — allocation-free
    /// once warm. On entry `delta` holds `d_out`; it is consumed as the
    /// ping-pong backprop buffer (with `delta_tmp` as its partner) and
    /// `grads` receives `(dW, db)` per layer, buffers resized in place.
    ///
    /// # Panics
    ///
    /// Panics if `delta` does not match the cached output shape.
    pub fn backward_into(
        &self,
        cache: &ForwardCache,
        delta: &mut Matrix,
        delta_tmp: &mut Matrix,
        grads: &mut Gradients,
    ) {
        let batch = delta.rows() as f32;
        self.backward_impl(cache, delta, delta_tmp, grads, Some(batch));
    }

    /// [`Mlp::backward_into`] without the batch-mean normalization: `grads`
    /// receives *raw per-sample sums* (`dW = deltaᵀ @ input`, `db = Σ
    /// delta`). This is the per-shard kernel of the data-parallel training
    /// path — each shard backpropagates its row range independently, the
    /// caller folds the shard sums in fixed index order
    /// ([`Gradients::accumulate_into`]) and divides by the *full* batch size
    /// once ([`Gradients::div_scalar`]), so the reduced gradient is
    /// identical whether one worker or many computed the shards.
    ///
    /// # Panics
    ///
    /// Panics if `delta` does not match the cached output shape.
    pub fn backward_batch_shard_into(
        &self,
        cache: &ForwardCache,
        delta: &mut Matrix,
        delta_tmp: &mut Matrix,
        grads: &mut Gradients,
    ) {
        self.backward_impl(cache, delta, delta_tmp, grads, None);
    }

    /// Shared backprop body. `normalizer = Some(batch)` divides both `dW`
    /// and `db` contributions by `batch` (the historical
    /// [`Mlp::backward_into`] arithmetic, preserved bit-for-bit);
    /// `None` leaves raw sums for the shard reduction.
    fn backward_impl(
        &self,
        cache: &ForwardCache,
        delta: &mut Matrix,
        delta_tmp: &mut Matrix,
        grads: &mut Gradients,
        normalizer: Option<f32>,
    ) {
        assert_eq!(
            (delta.rows(), delta.cols()),
            (cache.output().rows(), cache.output().cols()),
            "delta must match the cached output shape"
        );
        if grads.layers.len() != self.layers.len() {
            grads.layers.resize(self.layers.len(), (Matrix::zeros(0, 0), Vec::new()));
        }
        for (l, layer) in self.layers.iter().enumerate().rev() {
            // delta currently holds dL/d(output of layer l), post-activation.
            let out = &cache.activations[l + 1];
            for i in 0..delta.rows() {
                let drow = delta.row_mut(i);
                let orow = out.row(i);
                for (d, &o) in drow.iter_mut().zip(orow) {
                    *d *= layer.activation.grad_from_output(o);
                }
            }
            let input = &cache.activations[l];
            let (dw, db) = &mut grads.layers[l];
            // dW = deltaᵀ @ input [/ batch]  (out x in)
            delta.transposed_matmul_into(input, dw);
            if let Some(batch) = normalizer {
                dw.map_inplace(|v| v / batch);
            }
            db.clear();
            db.resize(layer.output_size(), 0.0);
            match normalizer {
                Some(batch) => {
                    for i in 0..delta.rows() {
                        for (b, &d) in db.iter_mut().zip(delta.row(i)) {
                            *b += d / batch;
                        }
                    }
                }
                None => {
                    for i in 0..delta.rows() {
                        for (b, &d) in db.iter_mut().zip(delta.row(i)) {
                            *b += d;
                        }
                    }
                }
            }
            // dL/d(input of layer l) = delta @ W  (batch x in)
            if l > 0 {
                delta.matmul_into(&layer.w, delta_tmp);
                std::mem::swap(delta, delta_tmp);
            }
        }
    }

    /// Copies another model's weights into this one without reallocating —
    /// the best-weights snapshot of the training loop.
    ///
    /// # Panics
    ///
    /// Panics if the architectures differ.
    pub fn copy_weights_from(&mut self, other: &Mlp) {
        assert_eq!(self.layers.len(), other.layers.len(), "layer count mismatch");
        for (dst, src) in self.layers.iter_mut().zip(&other.layers) {
            assert_eq!(
                (dst.w.rows(), dst.w.cols()),
                (src.w.rows(), src.w.cols()),
                "layer shape mismatch"
            );
            dst.w.as_mut_slice().copy_from_slice(src.w.as_slice());
            dst.b.copy_from_slice(&src.b);
            dst.activation = src.activation;
        }
    }

    /// Total dense FLOPs for one inference.
    pub fn flops(&self) -> u64 {
        self.layers.iter().map(Dense::flops).sum()
    }

    /// Total FLOPs counting only non-zero weights.
    pub fn sparse_flops(&self) -> u64 {
        self.layers.iter().map(Dense::sparse_flops).sum()
    }

    /// Number of weights (excluding biases).
    pub fn weight_count(&self) -> u64 {
        self.layers.iter().map(|l| (l.w.rows() * l.w.cols()) as u64).sum()
    }

    /// Number of non-zero weights.
    pub fn nonzero_weights(&self) -> u64 {
        self.layers
            .iter()
            .map(|l| l.w.as_slice().iter().filter(|v| **v != 0.0).count() as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn shapes_flow_through() {
        let mlp = Mlp::new(&[5, 20, 20, 6], &mut rng());
        assert_eq!(mlp.sizes(), vec![5, 20, 20, 6]);
        let y = mlp.forward(&Matrix::zeros(7, 5));
        assert_eq!((y.rows(), y.cols()), (7, 6));
    }

    #[test]
    fn flops_formula() {
        let mlp = Mlp::new(&[5, 12, 6], &mut rng());
        assert_eq!(mlp.flops(), 2 * (5 * 12 + 12 * 6) as u64);
        assert_eq!(mlp.weight_count(), (5 * 12 + 12 * 6) as u64);
    }

    #[test]
    fn hidden_layers_are_relu_output_is_identity() {
        let mlp = Mlp::new(&[3, 4, 2], &mut rng());
        assert_eq!(mlp.layers()[0].activation, Activation::Relu);
        assert_eq!(mlp.layers()[1].activation, Activation::Identity);
    }

    #[test]
    fn relu_clamps_negative_preactivations() {
        let mut l = Dense::new(2, 2, Activation::Relu, &mut rng());
        l.w = Matrix::from_rows(&[&[-1.0, 0.0], &[1.0, 0.0]]);
        l.b = vec![0.0, 0.0];
        let y = l.forward(&Matrix::from_rows(&[&[2.0, 0.0]]));
        assert_eq!(y.row(0), &[0.0, 2.0]);
    }

    /// Numerical gradient check: analytic backward vs finite differences.
    #[test]
    fn backward_matches_finite_differences() {
        let mut mlp = Mlp::new(&[3, 5, 2], &mut rng());
        let x = Matrix::from_rows(&[&[0.4, -0.2, 0.9], &[0.1, 0.8, -0.5]]);
        // Loss = 0.5 * sum(output²); dL/dout = out.
        let loss = |m: &Mlp| -> f64 {
            let y = m.forward(&x);
            y.as_slice().iter().map(|v| 0.5 * (*v as f64) * (*v as f64)).sum()
        };
        let cache = mlp.forward_train(&x);
        let d_out = cache.output().clone();
        let grads = mlp.backward(&cache, &d_out);

        let eps = 1e-3f32;
        let batch = x.rows() as f64;
        for (li, (dw, db)) in grads.layers.iter().enumerate() {
            // Spot-check a handful of weights per layer.
            for (r, c) in [(0usize, 0usize), (1, 1), (dw.rows() - 1, dw.cols() - 1)] {
                let orig = mlp.layers[li].w[(r, c)];
                mlp.layers_mut()[li].w[(r, c)] = orig + eps;
                let hi = loss(&mlp);
                mlp.layers_mut()[li].w[(r, c)] = orig - eps;
                let lo = loss(&mlp);
                mlp.layers_mut()[li].w[(r, c)] = orig;
                let numeric = ((hi - lo) / (2.0 * eps as f64) / batch) as f32;
                let analytic = dw[(r, c)];
                assert!(
                    (numeric - analytic).abs() < 2e-2 * (1.0 + analytic.abs()),
                    "layer {li} w[{r},{c}]: numeric {numeric} vs analytic {analytic}"
                );
            }
            let orig = mlp.layers[li].b[0];
            mlp.layers_mut()[li].b[0] = orig + eps;
            let hi = loss(&mlp);
            mlp.layers_mut()[li].b[0] = orig - eps;
            let lo = loss(&mlp);
            mlp.layers_mut()[li].b[0] = orig;
            let numeric = ((hi - lo) / (2.0 * eps as f64) / batch) as f32;
            assert!(
                (numeric - db[0]).abs() < 2e-2 * (1.0 + db[0].abs()),
                "layer {li} b[0]: numeric {numeric} vs analytic {}",
                db[0]
            );
        }
    }

    #[test]
    fn sparse_flops_tracks_zeros() {
        let mut mlp = Mlp::new(&[4, 4, 2], &mut rng());
        let dense = mlp.flops();
        assert_eq!(mlp.sparse_flops(), dense);
        // Zero half of the first layer.
        for (i, v) in mlp.layers_mut()[0].w.as_mut_slice().iter_mut().enumerate() {
            if i % 2 == 0 {
                *v = 0.0;
            }
        }
        assert!(mlp.sparse_flops() < dense);
        assert_eq!(mlp.nonzero_weights(), mlp.sparse_flops() / 2);
    }

    #[test]
    #[should_panic(expected = "adjacent layer widths")]
    fn mismatched_layers_rejected() {
        let mut r = rng();
        let a = Dense::new(3, 4, Activation::Relu, &mut r);
        let b = Dense::new(5, 2, Activation::Identity, &mut r);
        Mlp::from_layers(vec![a, b]);
    }

    #[test]
    fn forward_one_matches_batch() {
        let mlp = Mlp::new(&[3, 6, 2], &mut rng());
        let x = [0.3f32, -0.7, 0.2];
        let single = mlp.forward_one(&x);
        let batch = mlp.forward(&Matrix::from_rows(&[&x]));
        assert_eq!(single, batch.row(0));
    }

    #[test]
    fn warm_cache_and_scratch_reproduce_fresh_results() {
        let a = Mlp::new(&[4, 10, 3], &mut rng());
        let b = Mlp::new(&[4, 10, 3], &mut rng());
        let x = Matrix::from_rows(&[&[0.1, -0.2, 0.3, 0.4], &[1.0, 0.0, -1.0, 0.5]]);
        let mut cache = ForwardCache::empty();
        let mut scratch = InferScratch::new();
        for mlp in [&a, &b, &a] {
            mlp.forward_into(&x, &mut cache);
            assert_eq!(cache.output(), &mlp.forward(&x), "warm cache must match fresh");
            let got = mlp.forward_one_into(x.row(0), &mut scratch).to_vec();
            assert_eq!(got, mlp.forward_one(x.row(0)), "warm scratch must match fresh");
        }
    }

    #[test]
    fn backward_into_reuses_buffers_bit_identically() {
        let mlp = Mlp::new(&[3, 7, 2], &mut rng());
        let x = Matrix::from_rows(&[&[0.4, -0.2, 0.9], &[0.1, 0.8, -0.5]]);
        let cache = mlp.forward_train(&x);
        let d_out = cache.output().clone();
        let fresh = mlp.backward(&cache, &d_out);
        let mut delta = Matrix::zeros(0, 0);
        let mut delta_tmp = Matrix::zeros(0, 0);
        let mut grads = Gradients::empty();
        for _ in 0..2 {
            delta.reshape(d_out.rows(), d_out.cols());
            delta.as_mut_slice().copy_from_slice(d_out.as_slice());
            mlp.backward_into(&cache, &mut delta, &mut delta_tmp, &mut grads);
            assert_eq!(grads, fresh);
        }
    }

    #[test]
    fn shard_backward_reduces_to_the_full_gradient() {
        // Raw shard sums folded in fixed order and divided by the batch
        // size must match the monolithic backward to float tolerance (the
        // summation orders differ, so equality is approximate), and the dW
        // of a single whole-batch shard must match bit-for-bit.
        let mlp = Mlp::new(&[3, 6, 2], &mut rng());
        let x = Matrix::from_rows(&[
            &[0.4, -0.2, 0.9],
            &[0.1, 0.8, -0.5],
            &[-0.3, 0.5, 0.2],
            &[0.7, -0.6, 0.1],
        ]);
        let cache = mlp.forward_train(&x);
        let d_out = cache.output().clone();
        let full = mlp.backward(&cache, &d_out);

        // One shard covering the whole batch.
        let mut delta = d_out.clone();
        let mut tmp = Matrix::zeros(0, 0);
        let mut whole = Gradients::empty();
        mlp.backward_batch_shard_into(&cache, &mut delta, &mut tmp, &mut whole);
        let mut reduced = Gradients::empty();
        reduced.assign_from(&whole);
        reduced.div_scalar(x.rows() as f32);
        for ((dw, db), (fw, fb)) in reduced.layers.iter().zip(&full.layers) {
            for (a, b) in dw.as_slice().iter().zip(fw.as_slice()) {
                assert_eq!(a, b, "single-shard dW must match backward_into exactly");
            }
            for (a, b) in db.iter().zip(fb) {
                assert!((a - b).abs() <= 1e-6 * (1.0 + b.abs()));
            }
        }

        // Two shards of two rows each, folded in index order.
        let mut shard_grads = Vec::new();
        for rows in [[0usize, 1], [2, 3]] {
            let sx = x.select_rows(&rows);
            let scache = mlp.forward_train(&sx);
            let mut sdelta = d_out.select_rows(&rows);
            let mut sgrads = Gradients::empty();
            mlp.backward_batch_shard_into(&scache, &mut sdelta, &mut tmp, &mut sgrads);
            shard_grads.push(sgrads);
        }
        let mut sum = Gradients::empty();
        sum.assign_from(&shard_grads[0]);
        shard_grads[1].accumulate_into(&mut sum);
        sum.div_scalar(x.rows() as f32);
        for ((dw, db), (fw, fb)) in sum.layers.iter().zip(&full.layers) {
            for (a, b) in dw.as_slice().iter().zip(fw.as_slice()) {
                assert!((a - b).abs() <= 1e-5 * (1.0 + b.abs()), "sharded {a} vs full {b}");
            }
            for (a, b) in db.iter().zip(fb) {
                assert!((a - b).abs() <= 1e-5 * (1.0 + b.abs()));
            }
        }
    }

    #[test]
    #[should_panic(expected = "gradient shape mismatch")]
    fn accumulate_shape_mismatch_rejected() {
        let mut r = rng();
        let a = Mlp::new(&[3, 5, 2], &mut r);
        let b = Mlp::new(&[3, 6, 2], &mut r);
        let x = Matrix::from_rows(&[&[0.1, 0.2, 0.3]]);
        let ca = a.forward_train(&x);
        let cb = b.forward_train(&x);
        let ga = a.backward(&ca, &ca.output().clone());
        let mut gb = b.backward(&cb, &cb.output().clone());
        ga.accumulate_into(&mut gb);
    }

    #[test]
    fn copy_weights_from_snapshots_without_structural_change() {
        let mut rng = rng();
        let src = Mlp::new(&[3, 5, 2], &mut rng);
        let mut dst = Mlp::new(&[3, 5, 2], &mut rng);
        assert_ne!(src, dst);
        dst.copy_weights_from(&src);
        assert_eq!(src, dst);
    }

    #[test]
    #[should_panic(expected = "layer shape mismatch")]
    fn copy_weights_shape_mismatch_rejected() {
        let mut rng = rng();
        let src = Mlp::new(&[3, 5, 2], &mut rng);
        let mut dst = Mlp::new(&[3, 6, 2], &mut rng);
        dst.copy_weights_from(&src);
    }
}
