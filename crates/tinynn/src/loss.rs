//! Loss functions: softmax cross-entropy (Decision-maker) and mean squared
//! error (Calibrator).

use crate::matrix::Matrix;

/// Numerically stable softmax of one logit row.
pub fn softmax(logits: &[f32]) -> Vec<f32> {
    let mut out = logits.to_vec();
    softmax_in_place(&mut out);
    out
}

/// [`softmax`] computed in place — the allocation-free kernel behind the
/// `*_into` losses. Identical arithmetic (subtract max, exponentiate, sum,
/// normalize), so the values match [`softmax`] exactly.
pub fn softmax_in_place(v: &mut [f32]) {
    let max = v.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    for x in v.iter_mut() {
        *x = (*x - max).exp();
    }
    let sum: f32 = v.iter().sum();
    for x in v.iter_mut() {
        *x /= sum;
    }
}

/// Softmax cross-entropy over a batch of logits.
///
/// Returns `(mean_loss, d_logits)` where `d_logits` is the gradient of the
/// mean loss with respect to the raw logits — `softmax(x) - onehot(y)` per
/// row (the division by batch size happens in [`Mlp::backward`], which
/// averages over the batch).
///
/// # Panics
///
/// Panics if a label is out of range or batch sizes mismatch.
///
/// [`Mlp::backward`]: crate::Mlp::backward
pub fn cross_entropy(logits: &Matrix, labels: &[usize]) -> (f32, Matrix) {
    let mut grad = Matrix::zeros(0, 0);
    let loss = cross_entropy_into(logits, labels, &mut grad);
    (loss, grad)
}

/// [`cross_entropy`] writing the gradient into a caller-owned buffer
/// (resized as needed) — allocation-free once warm.
///
/// # Panics
///
/// Panics if a label is out of range or batch sizes mismatch.
pub fn cross_entropy_into(logits: &Matrix, labels: &[usize], grad: &mut Matrix) -> f32 {
    assert_eq!(logits.rows(), labels.len(), "one label per logit row");
    let classes = logits.cols();
    grad.reshape(logits.rows(), classes);
    let mut loss = 0.0f64;
    for (i, &label) in labels.iter().enumerate() {
        assert!(label < classes, "label {label} out of range for {classes} classes");
        let grow = grad.row_mut(i);
        grow.copy_from_slice(logits.row(i));
        softmax_in_place(grow);
        loss -= (grow[label].max(1e-12) as f64).ln();
        grow[label] -= 1.0;
    }
    (loss / labels.len() as f64) as f32
}

/// Class-weighted softmax cross-entropy: each sample's loss and gradient is
/// scaled by `class_weights[label]`, normalized by the batch's mean weight
/// so the overall gradient scale stays comparable to the unweighted loss.
/// Used to counter label imbalance (the DVFS decision labels are heavily
/// skewed toward the lowest operating point).
///
/// # Panics
///
/// Panics if a label is out of range, batch sizes mismatch, or the weight
/// table is shorter than the class count.
pub fn cross_entropy_weighted(
    logits: &Matrix,
    labels: &[usize],
    class_weights: &[f32],
) -> (f32, Matrix) {
    let mut grad = Matrix::zeros(0, 0);
    let loss = cross_entropy_weighted_into(logits, labels, class_weights, &mut grad);
    (loss, grad)
}

/// [`cross_entropy_weighted`] writing the gradient into a caller-owned
/// buffer (resized as needed) — allocation-free once warm.
///
/// # Panics
///
/// As [`cross_entropy_weighted`].
pub fn cross_entropy_weighted_into(
    logits: &Matrix,
    labels: &[usize],
    class_weights: &[f32],
    grad: &mut Matrix,
) -> f32 {
    assert_eq!(logits.rows(), labels.len(), "one label per logit row");
    let classes = logits.cols();
    assert!(class_weights.len() >= classes, "need a weight per class");
    let mean_w: f32 =
        labels.iter().map(|&l| class_weights[l]).sum::<f32>() / labels.len().max(1) as f32;
    let mean_w = mean_w.max(1e-6);
    grad.reshape(logits.rows(), classes);
    let mut loss = 0.0f64;
    for (i, &label) in labels.iter().enumerate() {
        assert!(label < classes, "label {label} out of range for {classes} classes");
        let w = class_weights[label] / mean_w;
        let grow = grad.row_mut(i);
        grow.copy_from_slice(logits.row(i));
        softmax_in_place(grow);
        loss -= f64::from(w) * (grow[label].max(1e-12) as f64).ln();
        for g in grow.iter_mut() {
            *g *= w;
        }
        grow[label] -= w;
    }
    (loss / labels.len() as f64) as f32
}

/// [`cross_entropy_into`] for one *shard* of a larger batch: identical
/// per-row gradient arithmetic (`softmax − onehot`, unnormalized), but the
/// returned loss is the raw `f64` sum of the shard's per-row losses — the
/// caller folds shard sums in fixed index order and divides by the full
/// batch size once, so sharding never changes the batch loss it reports.
///
/// # Panics
///
/// As [`cross_entropy_into`].
pub fn cross_entropy_shard_into(logits: &Matrix, labels: &[usize], grad: &mut Matrix) -> f64 {
    assert_eq!(logits.rows(), labels.len(), "one label per logit row");
    let classes = logits.cols();
    grad.reshape(logits.rows(), classes);
    let mut loss = 0.0f64;
    for (i, &label) in labels.iter().enumerate() {
        assert!(label < classes, "label {label} out of range for {classes} classes");
        let grow = grad.row_mut(i);
        grow.copy_from_slice(logits.row(i));
        softmax_in_place(grow);
        loss -= (grow[label].max(1e-12) as f64).ln();
        grow[label] -= 1.0;
    }
    loss
}

/// [`cross_entropy_weighted_into`] for one shard of a larger batch. The
/// batch-mean class weight is a *whole-batch* statistic, so the caller
/// computes it once over the full batch's labels and passes it in as
/// `mean_w` — per-row arithmetic is then identical to the monolithic
/// variant regardless of how the batch was sharded. Returns the raw `f64`
/// loss sum (see [`cross_entropy_shard_into`]).
///
/// # Panics
///
/// As [`cross_entropy_weighted_into`].
pub fn cross_entropy_weighted_shard_into(
    logits: &Matrix,
    labels: &[usize],
    class_weights: &[f32],
    mean_w: f32,
    grad: &mut Matrix,
) -> f64 {
    assert_eq!(logits.rows(), labels.len(), "one label per logit row");
    let classes = logits.cols();
    assert!(class_weights.len() >= classes, "need a weight per class");
    grad.reshape(logits.rows(), classes);
    let mut loss = 0.0f64;
    for (i, &label) in labels.iter().enumerate() {
        assert!(label < classes, "label {label} out of range for {classes} classes");
        let w = class_weights[label] / mean_w;
        let grow = grad.row_mut(i);
        grow.copy_from_slice(logits.row(i));
        softmax_in_place(grow);
        loss -= f64::from(w) * (grow[label].max(1e-12) as f64).ln();
        for g in grow.iter_mut() {
            *g *= w;
        }
        grow[label] -= w;
    }
    loss
}

/// The batch-mean class weight [`cross_entropy_weighted_into`] normalizes
/// by, exposed so the sharded training path can hoist it out of the shards
/// (clamped away from zero exactly like the monolithic loss).
pub fn mean_class_weight(labels: impl Iterator<Item = usize>, class_weights: &[f32]) -> f32 {
    let mut sum = 0.0f32;
    let mut n = 0usize;
    for l in labels {
        sum += class_weights[l];
        n += 1;
    }
    (sum / n.max(1) as f32).max(1e-6)
}

/// Mean squared error over a batch of scalar predictions (the first output
/// column is used).
///
/// Returns `(mean_loss, d_outputs)`.
///
/// # Panics
///
/// Panics if batch sizes mismatch.
pub fn mse(outputs: &Matrix, targets: &[f32]) -> (f32, Matrix) {
    let mut grad = Matrix::zeros(0, 0);
    let loss = mse_into(outputs, targets, &mut grad);
    (loss, grad)
}

/// [`mse`] writing the gradient into a caller-owned buffer (resized as
/// needed) — allocation-free once warm.
///
/// # Panics
///
/// Panics if batch sizes mismatch.
pub fn mse_into(outputs: &Matrix, targets: &[f32], grad: &mut Matrix) -> f32 {
    assert_eq!(outputs.rows(), targets.len(), "one target per output row");
    grad.reshape(outputs.rows(), outputs.cols());
    grad.as_mut_slice().iter_mut().for_each(|v| *v = 0.0);
    let mut loss = 0.0f64;
    for (i, &t) in targets.iter().enumerate() {
        let y = outputs.row(i)[0];
        let err = y - t;
        loss += (err as f64) * (err as f64);
        grad.row_mut(i)[0] = 2.0 * err;
    }
    (loss / targets.len() as f64) as f32
}

/// [`mse_into`] for one shard of a larger batch: identical per-row gradient
/// arithmetic, raw `f64` squared-error sum returned (see
/// [`cross_entropy_shard_into`]).
///
/// # Panics
///
/// Panics if batch sizes mismatch.
pub fn mse_shard_into(outputs: &Matrix, targets: &[f32], grad: &mut Matrix) -> f64 {
    assert_eq!(outputs.rows(), targets.len(), "one target per output row");
    grad.reshape(outputs.rows(), outputs.cols());
    grad.as_mut_slice().iter_mut().for_each(|v| *v = 0.0);
    let mut loss = 0.0f64;
    for (i, &t) in targets.iter().enumerate() {
        let y = outputs.row(i)[0];
        let err = y - t;
        loss += (err as f64) * (err as f64);
        grad.row_mut(i)[0] = 2.0 * err;
    }
    loss
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_losses_match_monolithic_on_a_whole_batch() {
        // A single shard covering the whole batch must reproduce the
        // monolithic loss and gradient exactly.
        let logits = Matrix::from_rows(&[&[0.2, -1.0, 0.4], &[1.5, 0.1, -0.2]]);
        let labels = [2usize, 0];
        let (ml, mg) = cross_entropy(&logits, &labels);
        let mut grad = Matrix::zeros(0, 0);
        let sum = cross_entropy_shard_into(&logits, &labels, &mut grad);
        assert_eq!((sum / labels.len() as f64) as f32, ml);
        assert_eq!(grad, mg);

        let weights = [2.0f32, 1.0, 0.5];
        let (wl, wg) = cross_entropy_weighted(&logits, &labels, &weights);
        let mean_w = mean_class_weight(labels.iter().copied(), &weights);
        let wsum = cross_entropy_weighted_shard_into(&logits, &labels, &weights, mean_w, &mut grad);
        assert_eq!((wsum / labels.len() as f64) as f32, wl);
        assert_eq!(grad, wg);

        let out = Matrix::from_rows(&[&[2.0], &[0.5]]);
        let targets = [1.0f32, 1.0];
        let (sl, sg) = mse(&out, &targets);
        let ssum = mse_shard_into(&out, &targets, &mut grad);
        assert_eq!((ssum / targets.len() as f64) as f32, sl);
        assert_eq!(grad, sg);
    }

    #[test]
    fn shard_rows_match_the_monolithic_gradient_rows() {
        // Each shard's gradient rows equal the corresponding rows of the
        // whole-batch gradient: per-row arithmetic is independent.
        let logits = Matrix::from_rows(&[&[0.2, -1.0, 0.4], &[1.5, 0.1, -0.2], &[-0.3, 0.9, 0.0]]);
        let labels = [2usize, 0, 1];
        let weights = [2.0f32, 1.0, 0.5];
        let mean_w = mean_class_weight(labels.iter().copied(), &weights);
        let (_, full) = cross_entropy_weighted(&logits, &labels, &weights);
        let mut grad = Matrix::zeros(0, 0);
        let mut total = 0.0f64;
        for (lo, hi) in [(0usize, 2usize), (2, 3)] {
            let shard = logits.select_rows(&(lo..hi).collect::<Vec<_>>());
            total += cross_entropy_weighted_shard_into(
                &shard,
                &labels[lo..hi],
                &weights,
                mean_w,
                &mut grad,
            );
            for r in lo..hi {
                assert_eq!(grad.row(r - lo), full.row(r), "row {r} diverged");
            }
        }
        assert!(total.is_finite());
    }

    #[test]
    fn mean_class_weight_clamps_away_from_zero() {
        assert_eq!(mean_class_weight([0usize, 0].into_iter(), &[0.0, 1.0]), 1e-6);
        let w = mean_class_weight([0usize, 1].into_iter(), &[1.0, 3.0]);
        assert_eq!(w, 2.0);
    }

    #[test]
    fn softmax_sums_to_one_and_orders() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        let sum: f32 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!(p[2] > p[1] && p[1] > p[0]);
    }

    #[test]
    fn softmax_is_stable_for_large_logits() {
        let p = softmax(&[1000.0, 1001.0]);
        assert!(p.iter().all(|v| v.is_finite()));
        assert!(p[1] > p[0]);
    }

    #[test]
    fn cross_entropy_perfect_prediction_is_near_zero() {
        let logits = Matrix::from_rows(&[&[20.0, 0.0, 0.0]]);
        let (loss, grad) = cross_entropy(&logits, &[0]);
        assert!(loss < 1e-6);
        assert!(grad.row(0)[0].abs() < 1e-6);
    }

    #[test]
    fn cross_entropy_gradient_is_softmax_minus_onehot() {
        let logits = Matrix::from_rows(&[&[0.0, 0.0]]);
        let (loss, grad) = cross_entropy(&logits, &[1]);
        assert!((loss - (2.0f32).ln()).abs() < 1e-5);
        assert!((grad.row(0)[0] - 0.5).abs() < 1e-6);
        assert!((grad.row(0)[1] + 0.5).abs() < 1e-6);
    }

    #[test]
    fn mse_known_values() {
        let out = Matrix::from_rows(&[&[2.0], &[0.0]]);
        let (loss, grad) = mse(&out, &[1.0, 1.0]);
        assert!((loss - 1.0).abs() < 1e-6); // ((1)² + (-1)²) / 2
        assert_eq!(grad.row(0)[0], 2.0);
        assert_eq!(grad.row(1)[0], -2.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_label_rejected() {
        let logits = Matrix::zeros(1, 3);
        cross_entropy(&logits, &[3]);
    }
}
