//! The per-cluster memory hierarchy: L1 → L2 slice → DRAM channel.
//!
//! L2 and DRAM latencies are expressed in nanoseconds because they belong to
//! the memory clock domain, which DVFS does not touch. This is the physical
//! root of frequency sensitivity: lowering the core clock stretches compute
//! cycles but leaves memory time unchanged, so memory-bound code barely
//! slows down while compute-bound code slows proportionally.

use serde::{Deserialize, Serialize};

use crate::cache::{Cache, CacheConfig};
use crate::time::Time;

/// Latency and bandwidth parameters of the memory hierarchy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemoryConfig {
    /// L1 geometry.
    pub l1: CacheConfig,
    /// L2 slice geometry.
    pub l2: CacheConfig,
    /// L1 hit latency in core cycles (core clock domain).
    pub l1_hit_cycles: u32,
    /// L2 hit latency in nanoseconds (memory clock domain).
    pub l2_hit_ns: f64,
    /// DRAM access latency in nanoseconds, excluding queueing.
    pub dram_ns: f64,
    /// DRAM channel occupancy per 128-byte transaction in nanoseconds
    /// (bandwidth model: the channel serializes transactions).
    pub dram_tx_ns: f64,
}

impl MemoryConfig {
    /// Titan-X-class parameters: 24 KiB L1, 128 KiB L2 slice, ~160 ns L2,
    /// ~320 ns DRAM, ~14 GB/s per-cluster DRAM slice bandwidth.
    pub fn titan_x() -> MemoryConfig {
        MemoryConfig {
            l1: CacheConfig::titan_x_l1(),
            l2: CacheConfig::titan_x_l2_slice(),
            l1_hit_cycles: 28,
            l2_hit_ns: 160.0,
            dram_ns: 320.0,
            dram_tx_ns: 9.0,
        }
    }
}

impl Default for MemoryConfig {
    fn default() -> MemoryConfig {
        MemoryConfig::titan_x()
    }
}

/// Where a global-memory access was served from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MemLevel {
    /// Served by the L1 data cache.
    L1,
    /// Missed L1, hit the L2 slice.
    L2,
    /// Missed both caches, served by DRAM.
    Dram,
}

/// The outcome of one global-memory access.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemAccessResult {
    /// The level that served the access.
    pub level: MemLevel,
    /// Total latency until the data is usable.
    pub latency: Time,
    /// Nanoseconds spent queueing for the DRAM channel (0 unless DRAM).
    pub queue_ns: f64,
}

/// One cluster's memory hierarchy state.
///
/// # Examples
///
/// ```
/// use gpu_sim::{ClusterMemory, MemLevel, MemoryConfig, Time};
///
/// let mut mem = ClusterMemory::new(MemoryConfig::titan_x());
/// let period_ps = 858; // 1165 MHz core clock
/// let first = mem.load(0x1000, Time::ZERO, period_ps);
/// assert_eq!(first.level, MemLevel::Dram); // cold miss
/// let again = mem.load(0x1000, first.latency, period_ps);
/// assert_eq!(again.level, MemLevel::L1);   // now resident
/// assert!(again.latency < first.latency);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterMemory {
    config: MemoryConfig,
    l1: Cache,
    l2: Cache,
    /// Absolute time at which the DRAM channel frees up.
    dram_free: Time,
    /// Total ns the DRAM channel has been busy (for occupancy counters).
    dram_busy_ns: f64,
}

impl ClusterMemory {
    /// Creates a cold memory hierarchy.
    pub fn new(config: MemoryConfig) -> ClusterMemory {
        ClusterMemory {
            l1: Cache::new(config.l1),
            l2: Cache::new(config.l2),
            config,
            dram_free: Time::ZERO,
            dram_busy_ns: 0.0,
        }
    }

    /// The hierarchy parameters.
    pub fn config(&self) -> &MemoryConfig {
        &self.config
    }

    /// Performs a global load at absolute time `now`, with the core clock
    /// period `core_period_ps` (L1 hits are served in core cycles).
    pub fn load(&mut self, addr: u64, now: Time, core_period_ps: u64) -> MemAccessResult {
        let l1_lat = Time::from_ps(self.config.l1_hit_cycles as u64 * core_period_ps);
        if self.l1.access(addr, true).is_hit() {
            return MemAccessResult { level: MemLevel::L1, latency: l1_lat, queue_ns: 0.0 };
        }
        if self.l2.access(addr, true).is_hit() {
            let latency = l1_lat + Time::from_nanos(self.config.l2_hit_ns);
            return MemAccessResult { level: MemLevel::L2, latency, queue_ns: 0.0 };
        }
        // DRAM: wait for the channel, then occupy it for one transaction.
        let ready = now.max(self.dram_free);
        let queue_ns = (ready - now).as_nanos();
        let occupancy = Time::from_nanos(self.config.dram_tx_ns);
        self.dram_free = ready + occupancy;
        self.dram_busy_ns += self.config.dram_tx_ns;
        let latency =
            l1_lat + Time::from_nanos(self.config.l2_hit_ns + self.config.dram_ns + queue_ns);
        MemAccessResult { level: MemLevel::Dram, latency, queue_ns }
    }

    /// Performs a global store at absolute time `now`. Stores are
    /// write-through/no-allocate in L1; a store that misses L2 writes to
    /// DRAM (occupying channel bandwidth) but does not stall the warp for
    /// the full round trip.
    pub fn store(&mut self, addr: u64, now: Time) -> MemLevel {
        let l1_hit = self.l1.access(addr, false).is_hit();
        let l2_hit = self.l2.access(addr, true).is_hit();
        if l2_hit {
            if l1_hit {
                MemLevel::L1
            } else {
                MemLevel::L2
            }
        } else {
            let ready = now.max(self.dram_free);
            self.dram_free = ready + Time::from_nanos(self.config.dram_tx_ns);
            self.dram_busy_ns += self.config.dram_tx_ns;
            MemLevel::Dram
        }
    }

    /// Total nanoseconds of DRAM channel occupancy so far.
    pub fn dram_busy_ns(&self) -> f64 {
        self.dram_busy_ns
    }

    /// Invalidates both cache levels (kernel boundary).
    pub fn flush(&mut self) {
        self.l1.flush();
        self.l2.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PERIOD: u64 = 858;

    #[test]
    fn cold_load_walks_the_full_hierarchy() {
        let mut mem = ClusterMemory::new(MemoryConfig::titan_x());
        let r = mem.load(0, Time::ZERO, PERIOD);
        assert_eq!(r.level, MemLevel::Dram);
        let expected_ns = 28.0 * 0.858 + 160.0 + 320.0;
        assert!((r.latency.as_nanos() - expected_ns).abs() < 1.0);
    }

    #[test]
    fn l1_hit_latency_scales_with_core_period() {
        let mut fast = ClusterMemory::new(MemoryConfig::titan_x());
        let mut slow = ClusterMemory::new(MemoryConfig::titan_x());
        fast.load(0, Time::ZERO, PERIOD);
        slow.load(0, Time::ZERO, 1464); // 683 MHz
        let hit_fast = fast.load(0, Time::from_micros(1.0), PERIOD);
        let hit_slow = slow.load(0, Time::from_micros(1.0), 1464);
        assert_eq!(hit_fast.level, MemLevel::L1);
        assert_eq!(hit_slow.level, MemLevel::L1);
        assert!(hit_slow.latency > hit_fast.latency);
    }

    #[test]
    fn dram_latency_is_frequency_independent() {
        let mut a = ClusterMemory::new(MemoryConfig::titan_x());
        let mut b = ClusterMemory::new(MemoryConfig::titan_x());
        let ra = a.load(0, Time::ZERO, PERIOD);
        let rb = b.load(0, Time::ZERO, 1464);
        // Only the (small) L1 probe differs; the DRAM part is identical.
        let diff = (ra.latency.as_nanos() - rb.latency.as_nanos()).abs();
        assert!(diff < 28.0 * (1.464 - 0.858) + 1.0);
        assert_eq!(ra.level, MemLevel::Dram);
        assert_eq!(rb.level, MemLevel::Dram);
    }

    #[test]
    fn dram_channel_serializes_transactions() {
        let mut mem = ClusterMemory::new(MemoryConfig::titan_x());
        // Two simultaneous DRAM accesses: the second queues.
        let r1 = mem.load(0x0000_0000, Time::ZERO, PERIOD);
        let r2 = mem.load(0x1000_0000, Time::ZERO, PERIOD);
        assert_eq!(r1.queue_ns, 0.0);
        assert!(r2.queue_ns > 0.0);
        assert!(r2.latency > r1.latency);
        assert!((mem.dram_busy_ns() - 18.0).abs() < 1e-9);
    }

    #[test]
    fn l2_catches_l1_evictions() {
        let cfg = MemoryConfig::titan_x();
        let l1_capacity = cfg.l1.capacity_bytes;
        let mut mem = ClusterMemory::new(cfg);
        // Stream through 2x the L1 capacity, then revisit the start: L1 has
        // evicted it but the (larger) L2 still holds it.
        let mut t = Time::ZERO;
        let mut addr = 0;
        while addr < 2 * l1_capacity {
            mem.load(addr, t, PERIOD);
            t += Time::from_nanos(500.0);
            addr += 128;
        }
        let r = mem.load(0, t, PERIOD);
        assert_eq!(r.level, MemLevel::L2);
    }

    #[test]
    fn store_levels() {
        let mut mem = ClusterMemory::new(MemoryConfig::titan_x());
        // Cold store: misses everywhere, goes to DRAM.
        assert_eq!(mem.store(0x40, Time::ZERO), MemLevel::Dram);
        // Second store to the same line: L2 now holds it, L1 never allocated.
        assert_eq!(mem.store(0x40, Time::ZERO), MemLevel::L2);
        // After a load allocates into L1, the store probes hit L1.
        mem.load(0x40, Time::ZERO, PERIOD);
        assert_eq!(mem.store(0x40, Time::ZERO), MemLevel::L1);
    }

    #[test]
    fn flush_restores_cold_behaviour() {
        let mut mem = ClusterMemory::new(MemoryConfig::titan_x());
        mem.load(0, Time::ZERO, PERIOD);
        mem.flush();
        let r = mem.load(0, Time::from_micros(1.0), PERIOD);
        assert_eq!(r.level, MemLevel::Dram);
    }
}
