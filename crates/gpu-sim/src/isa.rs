//! The simulator's abstract warp-instruction classes.
//!
//! The simulator does not interpret real SASS/PTX; it executes *instruction
//! classes* whose timing and energy behaviour match the categories the
//! SSMDVFS performance counters distinguish: integer/FP/SFU arithmetic,
//! global and shared memory loads/stores, branches and barriers.

use std::fmt;

use serde::{Deserialize, Serialize};

/// The class of one warp-instruction.
///
/// # Examples
///
/// ```
/// use gpu_sim::InstrClass;
///
/// assert!(InstrClass::LoadGlobal.is_memory());
/// assert!(InstrClass::FpAlu.is_compute());
/// assert_eq!(InstrClass::ALL.len(), 9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InstrClass {
    /// Integer arithmetic / logic / address math.
    IntAlu,
    /// FP32 arithmetic (FMA pipeline).
    FpAlu,
    /// Special function unit (transcendental, rsqrt, ...).
    Sfu,
    /// Load from global/local memory (goes through L1/L2/DRAM).
    LoadGlobal,
    /// Load from on-chip shared memory.
    LoadShared,
    /// Store to global/local memory.
    StoreGlobal,
    /// Store to on-chip shared memory.
    StoreShared,
    /// Branch / control flow.
    Branch,
    /// CTA-wide barrier synchronization.
    Barrier,
}

impl InstrClass {
    /// Every instruction class, in a stable order.
    pub const ALL: [InstrClass; 9] = [
        InstrClass::IntAlu,
        InstrClass::FpAlu,
        InstrClass::Sfu,
        InstrClass::LoadGlobal,
        InstrClass::LoadShared,
        InstrClass::StoreGlobal,
        InstrClass::StoreShared,
        InstrClass::Branch,
        InstrClass::Barrier,
    ];

    /// Returns `true` for classes that touch a memory pipeline.
    pub fn is_memory(self) -> bool {
        matches!(
            self,
            InstrClass::LoadGlobal
                | InstrClass::LoadShared
                | InstrClass::StoreGlobal
                | InstrClass::StoreShared
        )
    }

    /// Returns `true` for pure arithmetic classes.
    pub fn is_compute(self) -> bool {
        matches!(self, InstrClass::IntAlu | InstrClass::FpAlu | InstrClass::Sfu)
    }

    /// Returns `true` for loads (global or shared).
    pub fn is_load(self) -> bool {
        matches!(self, InstrClass::LoadGlobal | InstrClass::LoadShared)
    }

    /// Returns `true` for stores (global or shared).
    pub fn is_store(self) -> bool {
        matches!(self, InstrClass::StoreGlobal | InstrClass::StoreShared)
    }

    /// Short mnemonic used in traces and debug output.
    pub fn mnemonic(self) -> &'static str {
        match self {
            InstrClass::IntAlu => "ialu",
            InstrClass::FpAlu => "falu",
            InstrClass::Sfu => "sfu",
            InstrClass::LoadGlobal => "ldg",
            InstrClass::LoadShared => "lds",
            InstrClass::StoreGlobal => "stg",
            InstrClass::StoreShared => "sts",
            InstrClass::Branch => "bra",
            InstrClass::Barrier => "bar",
        }
    }
}

impl fmt::Display for InstrClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Fixed execution latencies (in core cycles) for the non-variable
/// instruction classes. Global-memory latency is determined by the cache
/// hierarchy at run time instead.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyTable {
    /// Integer ALU result latency.
    pub int_alu: u32,
    /// FP32 result latency.
    pub fp_alu: u32,
    /// SFU result latency.
    pub sfu: u32,
    /// Shared-memory load latency.
    pub load_shared: u32,
    /// Shared-memory store latency.
    pub store_shared: u32,
    /// Global store latency (write buffer drain slot).
    pub store_global: u32,
    /// Branch resolution latency.
    pub branch: u32,
    /// Extra serialization cycles when a branch diverges.
    pub divergence_penalty: u32,
}

impl LatencyTable {
    /// Maxwell-class latencies used by the Titan X preset.
    pub fn titan_x() -> LatencyTable {
        LatencyTable {
            int_alu: 6,
            fp_alu: 6,
            sfu: 16,
            load_shared: 24,
            store_shared: 8,
            store_global: 12,
            branch: 8,
            divergence_penalty: 16,
        }
    }

    /// Latency in cycles for a class with fixed latency.
    ///
    /// # Panics
    ///
    /// Panics for [`InstrClass::LoadGlobal`] (variable latency, resolved by
    /// the memory hierarchy) and [`InstrClass::Barrier`] (waits on other
    /// warps, not on a pipeline).
    pub fn fixed_latency(&self, class: InstrClass) -> u32 {
        match class {
            InstrClass::IntAlu => self.int_alu,
            InstrClass::FpAlu => self.fp_alu,
            InstrClass::Sfu => self.sfu,
            InstrClass::LoadShared => self.load_shared,
            InstrClass::StoreShared => self.store_shared,
            InstrClass::StoreGlobal => self.store_global,
            InstrClass::Branch => self.branch,
            InstrClass::LoadGlobal | InstrClass::Barrier => {
                panic!("{class} has no fixed latency")
            }
        }
    }
}

impl Default for LatencyTable {
    fn default() -> LatencyTable {
        LatencyTable::titan_x()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_predicates() {
        assert!(InstrClass::LoadGlobal.is_memory());
        assert!(InstrClass::LoadGlobal.is_load());
        assert!(!InstrClass::LoadGlobal.is_store());
        assert!(InstrClass::StoreShared.is_memory());
        assert!(InstrClass::StoreShared.is_store());
        assert!(InstrClass::Sfu.is_compute());
        assert!(!InstrClass::Branch.is_compute());
        assert!(!InstrClass::Branch.is_memory());
    }

    #[test]
    fn all_is_exhaustive_and_unique() {
        let mut names: Vec<&str> = InstrClass::ALL.iter().map(|c| c.mnemonic()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), InstrClass::ALL.len());
    }

    #[test]
    fn fixed_latencies_positive() {
        let t = LatencyTable::titan_x();
        for class in InstrClass::ALL {
            if !matches!(class, InstrClass::LoadGlobal | InstrClass::Barrier) {
                assert!(t.fixed_latency(class) > 0, "{class} latency must be positive");
            }
        }
    }

    #[test]
    #[should_panic(expected = "no fixed latency")]
    fn global_load_has_no_fixed_latency() {
        LatencyTable::titan_x().fixed_latency(InstrClass::LoadGlobal);
    }
}
