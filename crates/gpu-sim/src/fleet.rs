//! Multi-GPU fleet driver.
//!
//! Runs many simulated GPUs concurrently, each forwarding its per-cluster
//! DVFS decisions to a shared [`DecisionSource`] — typically a batching
//! decision service that answers requests from the whole fleet with shared
//! inference. The driver reuses [`Simulation::run`] wholesale (first-epoch
//! default operating points, per-cluster decide order, energy accounting),
//! so one fleet GPU behaves exactly like a standalone simulation whose
//! governor delegates to the source.

use std::sync::Arc;

use gpu_power::VfTable;

use crate::counters::EpochCounters;
use crate::governor::DvfsGovernor;
use crate::gpu::GpuConfig;
use crate::kernel::Workload;
use crate::sim::{SimResult, Simulation};
use crate::time::Time;

/// A shared, thread-safe decision provider for a fleet of GPUs.
///
/// `decide` receives the fleet-wide GPU index alongside the usual cluster
/// counters so the source can keep per-`(gpu, cluster)` state. It is
/// called concurrently from one thread per in-flight GPU.
pub trait DecisionSource: Sync {
    /// Chooses the operating-point index for `cluster` of `gpu` after an
    /// epoch that produced `counters`. Must return an index `< table.len()`.
    fn decide(
        &self,
        gpu: usize,
        cluster: usize,
        counters: &EpochCounters,
        table: &VfTable,
    ) -> usize;
}

/// The outcome of one fleet GPU: its simulation result plus the full
/// decision stream in the order [`Simulation::run`] requested decisions
/// (epoch-major, cluster-minor).
#[derive(Debug, Clone)]
pub struct FleetGpuResult {
    /// Fleet-wide GPU index.
    pub gpu: usize,
    /// The per-GPU simulation result.
    pub result: SimResult,
    /// Every operating-point index the source returned, in request order.
    pub decisions: Vec<usize>,
}

/// Adapts a `&DecisionSource` into the `DvfsGovernor` a [`Simulation`]
/// drives, recording the decision stream as it goes.
struct SourceGovernor<'a, D: DecisionSource + ?Sized> {
    gpu: usize,
    source: &'a D,
    decisions: Vec<usize>,
}

impl<D: DecisionSource + ?Sized> DvfsGovernor for SourceGovernor<'_, D> {
    fn name(&self) -> &str {
        "fleet-source"
    }

    fn decide(&mut self, cluster: usize, counters: &EpochCounters, table: &VfTable) -> usize {
        let op = self.source.decide(self.gpu, cluster, counters, table);
        self.decisions.push(op);
        op
    }
}

/// Runs `workloads.len()` GPUs (GPU `i` runs `workloads[i]` on a clone of
/// `config`) for up to `max_time` each, spread over `jobs` worker threads,
/// all deciding through `source`.
///
/// Worker `w` runs GPUs `w, w + jobs, w + 2*jobs, …` sequentially, so a
/// given GPU's requests always reach the source in its own epoch order;
/// results come back sorted by GPU index regardless of thread timing.
///
/// # Panics
///
/// Panics if `jobs == 0` or a worker thread panics.
pub fn run_fleet<D: DecisionSource + ?Sized>(
    config: &Arc<GpuConfig>,
    workloads: &[Arc<Workload>],
    max_time: Time,
    jobs: usize,
    source: &D,
) -> Vec<FleetGpuResult> {
    assert!(jobs > 0, "run_fleet needs at least one worker");
    let jobs = jobs.min(workloads.len()).max(1);
    let mut results: Vec<FleetGpuResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..jobs)
            .map(|w| {
                scope.spawn(move || {
                    let mut out = Vec::new();
                    let mut gpu = w;
                    while gpu < workloads.len() {
                        let mut governor = SourceGovernor { gpu, source, decisions: Vec::new() };
                        let mut sim =
                            Simulation::new(Arc::clone(config), Arc::clone(&workloads[gpu]));
                        let result = sim.run(&mut governor, max_time);
                        out.push(FleetGpuResult { gpu, result, decisions: governor.decisions });
                        gpu += jobs;
                    }
                    out
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("fleet worker panicked")).collect()
    });
    results.sort_by_key(|r| r.gpu);
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::governor::StaticGovernor;

    /// A source that picks deterministically from the counters, so any
    /// scheduling nondeterminism would show up as a changed stream.
    struct CycleSource;

    impl DecisionSource for CycleSource {
        fn decide(
            &self,
            gpu: usize,
            cluster: usize,
            counters: &EpochCounters,
            table: &VfTable,
        ) -> usize {
            let c = counters[crate::counters::CounterId::TotalCycles] as usize;
            (gpu + cluster + c) % table.len()
        }
    }

    fn tiny_workloads(n: usize) -> Vec<Arc<Workload>> {
        use crate::isa::InstrClass;
        use crate::kernel::{BasicBlock, KernelSpec, MemoryBehavior};
        (0..n)
            .map(|i| {
                let kernel = KernelSpec::new(
                    "axpy",
                    vec![BasicBlock::new(
                        vec![InstrClass::LoadGlobal, InstrClass::FpAlu, InstrClass::StoreGlobal],
                        100 + 20 * i as u32,
                        0.0,
                    )],
                    2,
                    8,
                    MemoryBehavior::streaming(1 << 20),
                );
                Arc::new(Workload::new(format!("fleet-{i}"), vec![kernel]))
            })
            .collect()
    }

    #[test]
    fn fleet_results_are_invariant_across_job_counts() {
        let config = Arc::new(GpuConfig::small_test());
        let workloads = tiny_workloads(5);
        let horizon = Time::from_micros(300.0);
        let a = run_fleet(&config, &workloads, horizon, 1, &CycleSource);
        let b = run_fleet(&config, &workloads, horizon, 4, &CycleSource);
        assert_eq!(a.len(), 5);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.gpu, y.gpu);
            assert_eq!(x.decisions, y.decisions, "gpu {}", x.gpu);
            assert_eq!(x.result.instructions, y.result.instructions, "gpu {}", x.gpu);
            assert_eq!(x.result.epochs, y.result.epochs, "gpu {}", x.gpu);
        }
    }

    #[test]
    fn fleet_gpu_matches_standalone_simulation() {
        struct DefaultSource;
        impl DecisionSource for DefaultSource {
            fn decide(&self, _: usize, _: usize, _: &EpochCounters, table: &VfTable) -> usize {
                table.default_index()
            }
        }
        let config = Arc::new(GpuConfig::small_test());
        let workloads = tiny_workloads(1);
        let horizon = Time::from_micros(300.0);
        let fleet = run_fleet(&config, &workloads, horizon, 1, &DefaultSource);

        let mut governor = StaticGovernor::default_point(&config.vf_table);
        let mut sim = Simulation::new(Arc::clone(&config), Arc::clone(&workloads[0]));
        let solo = sim.run(&mut governor, horizon);
        assert_eq!(fleet[0].result.instructions, solo.instructions);
        assert_eq!(fleet[0].result.epochs, solo.epochs);
    }
}
