//! Epoch-trace export.
//!
//! Turns the per-epoch records of a simulation into a flat CSV for external
//! analysis/plotting: one row per (epoch, cluster) with the operating
//! point, throughput, stall breakdown and power.

use std::fmt::Write as _;

use crate::counters::CounterId;
use crate::sim::EpochRecord;

/// Counters exported per trace row, in column order.
const TRACE_COUNTERS: [CounterId; 10] = [
    CounterId::TotalInstrs,
    CounterId::Ipc,
    CounterId::StallMemLoad,
    CounterId::StallMemOther,
    CounterId::StallControl,
    CounterId::StallEmpty,
    CounterId::L1ReadMiss,
    CounterId::DramReads,
    CounterId::PowerTotalW,
    CounterId::EnergyEpochJ,
];

/// Renders epoch records as CSV (header + one row per epoch/cluster pair).
///
/// # Examples
///
/// ```
/// use gpu_sim::{epoch_trace_csv, GpuConfig, Simulation, StaticGovernor, Time};
/// use gpu_sim::{BasicBlock, InstrClass, KernelSpec, MemoryBehavior, Workload};
///
/// let cfg = GpuConfig::small_test();
/// let kernel = KernelSpec::new(
///     "k",
///     vec![BasicBlock::new(vec![InstrClass::IntAlu], 200, 0.0)],
///     2,
///     8,
///     MemoryBehavior::streaming(1 << 16),
/// );
/// let mut sim = Simulation::new(cfg.clone(), Workload::new("t", vec![kernel]));
/// let mut governor = StaticGovernor::default_point(&cfg.vf_table);
/// sim.run(&mut governor, Time::from_micros(1_000.0));
/// let csv = epoch_trace_csv(sim.records());
/// assert!(csv.starts_with("epoch,cluster,start_us,op_index"));
/// assert!(csv.lines().count() > 1);
/// ```
pub fn epoch_trace_csv(records: &[EpochRecord]) -> String {
    let mut out = String::from("epoch,cluster,start_us,op_index,cum_instructions");
    for id in TRACE_COUNTERS {
        let _ = write!(out, ",{}", id.name());
    }
    out.push('\n');
    for record in records {
        for (cluster, c) in record.clusters.iter().enumerate() {
            let _ = write!(
                out,
                "{},{},{:.3},{},{}",
                record.index,
                cluster,
                record.start.as_micros(),
                c.op_index,
                c.cum_instructions
            );
            for id in TRACE_COUNTERS {
                let _ = write!(out, ",{:.6}", c.counters[id]);
            }
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::governor::StaticGovernor;
    use crate::gpu::GpuConfig;
    use crate::isa::InstrClass;
    use crate::kernel::{BasicBlock, KernelSpec, MemoryBehavior, Workload};
    use crate::sim::Simulation;
    use crate::time::Time;

    #[test]
    fn trace_has_one_row_per_epoch_cluster() {
        let cfg = GpuConfig::small_test();
        let kernel = KernelSpec::new(
            "k",
            vec![BasicBlock::new(vec![InstrClass::IntAlu, InstrClass::FpAlu], 500, 0.0)],
            2,
            8,
            MemoryBehavior::streaming(1 << 16),
        );
        let mut sim = Simulation::new(cfg.clone(), Workload::new("t", vec![kernel]));
        let mut governor = StaticGovernor::default_point(&cfg.vf_table);
        sim.run(&mut governor, Time::from_micros(2_000.0));
        let csv = epoch_trace_csv(sim.records());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 1 + sim.records().len() * cfg.num_clusters);
        // Header names match counters.
        assert!(lines[0].contains("power_total_w"));
        // Every data row has the same number of fields as the header.
        let fields = lines[0].split(',').count();
        for l in &lines[1..] {
            assert_eq!(l.split(',').count(), fields);
        }
    }

    #[test]
    fn empty_records_yield_header_only() {
        let csv = epoch_trace_csv(&[]);
        assert_eq!(csv.lines().count(), 1);
    }
}
