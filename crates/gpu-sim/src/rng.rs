//! A tiny deterministic PRNG for per-warp decisions.
//!
//! Warps draw from this stream to pick divergence outcomes and memory
//! addresses. Determinism matters more than statistical quality here: a
//! warp's draw sequence depends only on its identity and how many
//! instructions it has executed — never on timing — so replaying a program
//! segment at a different clock frequency reproduces the identical
//! instruction and address stream (the paper's "total workload remains
//! constant" requirement).

use serde::{Deserialize, Serialize};

/// SplitMix64: a fast, small, well-distributed 64-bit PRNG.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in [0, 1).
    pub fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }

    /// Uniform value in [0, bound). Returns 0 when `bound` is 0.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            // Multiply-shift bounded sampling (Lemire); bias is negligible
            // for the simulator's purposes.
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }
    }
}

/// Mixes two values into a seed (e.g. a global seed and a warp id).
pub fn mix_seed(a: u64, b: u64) -> u64 {
    let mut s = SplitMix64::new(a ^ b.rotate_left(32).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    s.next_u64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f32_in_unit_interval() {
        let mut r = SplitMix64::new(7);
        for _ in 0..10_000 {
            let v = r.next_f32();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn f32_is_roughly_uniform() {
        let mut r = SplitMix64::new(9);
        let mean: f32 = (0..10_000).map(|_| r.next_f32()).sum::<f32>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn bounded_sampling() {
        let mut r = SplitMix64::new(11);
        for _ in 0..10_000 {
            assert!(r.next_below(17) < 17);
        }
        assert_eq!(r.next_below(0), 0);
        // Every residue of a small bound appears.
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            seen[r.next_below(5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn mix_seed_varies_with_both_inputs() {
        assert_ne!(mix_seed(1, 2), mix_seed(1, 3));
        assert_ne!(mix_seed(1, 2), mix_seed(2, 2));
        assert_eq!(mix_seed(5, 6), mix_seed(5, 6));
    }
}
