//! The streaming-multiprocessor core: warp scheduling and the cycle loop.
//!
//! Each cluster contains one SM (matching the paper's 24-cluster Titan X
//! setup, where DVFS is applied per cluster). The SM keeps a pool of
//! resident warps fed from a queue of pending CTAs, and each core cycle a
//! greedy-then-oldest scheduler issues up to `issue_width` instructions
//! from ready warps. Cycles in which nothing can issue are attributed to a
//! stall cause — the raw material of the paper's execution-stall counters.

use std::collections::VecDeque;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::counters::{CounterId, EpochCounters};
use crate::isa::{InstrClass, LatencyTable};
use crate::kernel::KernelSpec;
use crate::memory::{ClusterMemory, MemLevel};
use crate::time::Time;
use crate::warp::{WaitCause, Warp, WarpState};

/// How the cycle loop advances through stretches where no warp can issue.
///
/// Both engines produce bit-identical counters, epoch records and results —
/// `CycleSkip` merely batches the accounting for cycles whose outcome is
/// already known (every live warp waiting on an event with a known wake
/// time). `NaiveTick` is kept as the reference implementation the
/// equivalence proptests compare against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum EngineMode {
    /// Reference engine: tick every core cycle individually.
    NaiveTick,
    /// Fast engine: when nothing can issue, jump straight to the earliest
    /// wake-up (or the end of the epoch when the SM is empty).
    #[default]
    CycleSkip,
}

/// Result of running one epoch on an SM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EpochOutcome {
    /// Warp-instructions retired during the epoch.
    pub instructions: u64,
    /// Absolute time at which the SM ran out of work, if it did.
    pub finished_at: Option<Time>,
    /// Stall cycles accounted for in bulk instead of being ticked
    /// individually (always zero under [`EngineMode::NaiveTick`]).
    pub skipped_cycles: u64,
}

/// One SM's execution state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SmCore {
    kernel: Option<Arc<KernelSpec>>,
    kernel_seed: u64,
    warps: Vec<Warp>,
    pending_ctas: VecDeque<u64>,
    max_warps: usize,
    issue_width: usize,
    next_age: u64,
    last_issued_age: u64,
    finish_time: Option<Time>,
}

impl SmCore {
    /// Creates an idle SM with capacity for `max_warps` resident warps that
    /// issues up to `issue_width` instructions per cycle.
    ///
    /// # Panics
    ///
    /// Panics if either capacity is zero.
    pub fn new(max_warps: usize, issue_width: usize) -> SmCore {
        assert!(max_warps > 0, "an SM needs at least one warp slot");
        assert!(issue_width > 0, "issue width must be positive");
        SmCore {
            kernel: None,
            kernel_seed: 0,
            warps: Vec::with_capacity(max_warps),
            pending_ctas: VecDeque::new(),
            max_warps,
            issue_width,
            next_age: 0,
            last_issued_age: 0,
            finish_time: None,
        }
    }

    /// Assigns a kernel and the CTA ids this SM is responsible for.
    ///
    /// # Panics
    ///
    /// Panics if the SM still has resident warps, or if a single CTA needs
    /// more warp slots than the SM has.
    pub fn assign_kernel(
        &mut self,
        kernel: impl Into<Arc<KernelSpec>>,
        cta_ids: Vec<u64>,
        seed: u64,
    ) {
        let kernel: Arc<KernelSpec> = kernel.into();
        assert!(self.warps.is_empty(), "cannot assign a kernel to a busy SM");
        assert!(
            kernel.warps_per_cta() <= self.max_warps,
            "kernel '{}' needs {} warps per CTA but the SM holds only {}",
            kernel.name(),
            kernel.warps_per_cta(),
            self.max_warps
        );
        self.kernel = Some(kernel);
        self.kernel_seed = seed;
        self.pending_ctas = cta_ids.into();
        self.finish_time = None;
    }

    /// Returns `true` when the SM has no resident warps and no pending CTAs.
    pub fn is_idle(&self) -> bool {
        self.warps.is_empty() && self.pending_ctas.is_empty()
    }

    /// The absolute time the SM most recently ran out of work.
    pub fn finish_time(&self) -> Option<Time> {
        self.finish_time
    }

    /// Number of currently resident (live or finished-but-unretired) warps.
    pub fn resident_warps(&self) -> usize {
        self.warps.len()
    }

    fn launch_ctas(&mut self) {
        let Some(kernel) = &self.kernel else { return };
        let wpc = kernel.warps_per_cta();
        while !self.pending_ctas.is_empty() && self.warps.len() + wpc <= self.max_warps {
            let cta_id = self.pending_ctas.pop_front().expect("checked non-empty");
            for i in 0..wpc {
                let global_id = cta_id * wpc as u64 + i as u64;
                self.warps.push(Warp::new(cta_id, global_id, self.kernel_seed, self.next_age));
                self.next_age += 1;
            }
        }
    }

    /// Releases every warp of `cta_id` parked at a barrier if no live warp
    /// of that CTA is still on its way there.
    fn maybe_release_barrier(&mut self, cta_id: u64) {
        let blocking = self
            .warps
            .iter()
            .any(|w| w.cta_id == cta_id && w.is_live() && w.state != WarpState::AtBarrier);
        if !blocking {
            for w in &mut self.warps {
                if w.cta_id == cta_id && w.state == WarpState::AtBarrier {
                    w.state = WarpState::Ready;
                }
            }
        }
    }

    /// Removes the warps of `cta_id` if every one of them has finished.
    fn maybe_retire_cta(&mut self, cta_id: u64) {
        let all_done = self.warps.iter().filter(|w| w.cta_id == cta_id).all(|w| !w.is_live());
        if all_done {
            self.warps.retain(|w| w.cta_id != cta_id);
        }
    }

    /// Runs the SM for `cycles` core cycles of period `period_ps`,
    /// starting at absolute time `epoch_start`, updating `counters`.
    /// Uses the default [`EngineMode::CycleSkip`] engine.
    pub fn run_epoch(
        &mut self,
        epoch_start: Time,
        cycles: u64,
        period_ps: u64,
        mem: &mut ClusterMemory,
        lat: &LatencyTable,
        counters: &mut EpochCounters,
    ) -> EpochOutcome {
        self.run_epoch_mode(
            EngineMode::CycleSkip,
            epoch_start,
            cycles,
            period_ps,
            mem,
            lat,
            counters,
        )
    }

    /// Runs the SM for `cycles` core cycles under an explicit engine mode.
    #[allow(clippy::too_many_lines, clippy::too_many_arguments)]
    pub fn run_epoch_mode(
        &mut self,
        mode: EngineMode,
        epoch_start: Time,
        cycles: u64,
        period_ps: u64,
        mem: &mut ClusterMemory,
        lat: &LatencyTable,
        counters: &mut EpochCounters,
    ) -> EpochOutcome {
        use CounterId::*;
        let start_instrs = counters[TotalInstrs];
        let mut mem_lat_sum_ns = 0.0;
        let mut mem_lat_count = 0u64;
        let mut occupancy_sum = 0u128;
        let mut skipped = 0u64;
        let mut c = 0u64;

        while c < cycles {
            let now = epoch_start + Time::from_ps(c * period_ps);
            self.launch_ctas();

            // Single scan: wake sleeping warps, classify blockers, and find
            // issue candidates (greedy: the last-issued warp first, then
            // oldest ready).
            let mut n_live = 0u32;
            let mut n_load = 0u32;
            let mut n_store = 0u32;
            let mut n_ctrl = 0u32;
            let mut n_exec = 0u32;
            let mut next_wake: Option<Time> = None;
            // (age, index) of up to `issue_width` best candidates; the
            // last-issued warp is ranked first by treating its age as 0.
            let mut picks: Vec<(u64, usize)> = Vec::with_capacity(self.issue_width + 1);
            for (i, w) in self.warps.iter_mut().enumerate() {
                if !w.is_live() {
                    continue;
                }
                n_live += 1;
                if let WarpState::Waiting { until, cause } = w.state {
                    if until <= now {
                        w.state = WarpState::Ready;
                    } else {
                        next_wake = Some(next_wake.map_or(until, |t: Time| t.min(until)));
                        match cause {
                            WaitCause::MemLoad => n_load += 1,
                            WaitCause::MemStore => n_store += 1,
                            WaitCause::Control => n_ctrl += 1,
                            WaitCause::Exec => n_exec += 1,
                        }
                        continue;
                    }
                }
                if w.state == WarpState::Ready {
                    let rank = if w.age == self.last_issued_age { 0 } else { w.age + 1 };
                    picks.push((rank, i));
                }
            }
            picks.sort_unstable();
            picks.truncate(self.issue_width);

            occupancy_sum += n_live as u128;
            if n_live > 0 {
                counters[ActiveCycles] += 1.0;
            }

            if picks.is_empty() {
                // Stall cycle(s): attribute and — under `CycleSkip` —
                // fast-forward to the next wake-up (or the end of the epoch
                // when nothing is pending). No warp, memory or scheduler
                // state can change before the earliest wake time, so the
                // per-cycle accounting below is exact for the whole jump.
                let delta = match mode {
                    EngineMode::NaiveTick => 1,
                    EngineMode::CycleSkip => match next_wake {
                        Some(t) => {
                            // The warp wakes on the first cycle whose start
                            // time reaches `t`: ceil(gap / period) ticks.
                            let gap_ps = t.saturating_sub(now).as_ps();
                            gap_ps.div_ceil(period_ps).max(1).min(cycles - c)
                        }
                        None => cycles - c,
                    },
                };
                let cause = if n_live == 0 {
                    StallEmpty
                } else if n_load > 0 {
                    StallMemLoad
                } else if n_store > 0 {
                    StallMemOther
                } else if n_ctrl > 0 {
                    StallControl
                } else if n_exec > 0 {
                    StallDataDep
                } else {
                    // Every live warp is at a barrier; release is immediate
                    // on parking, so this indicates a logic error.
                    debug_assert!(false, "all warps at barrier without release");
                    StallBarrier
                };
                counters[cause] += delta as f64;
                if n_live > 0 {
                    counters[ActiveCycles] += (delta - 1) as f64;
                }
                occupancy_sum += n_live as u128 * (delta - 1) as u128;
                skipped += delta - 1;
                c += delta;
                if n_live == 0
                    && self.pending_ctas.is_empty()
                    && self.finish_time.is_none()
                    && self.kernel.is_some()
                {
                    self.finish_time = Some(now);
                }
                continue;
            }

            counters[IssuedCycles] += 1.0;
            // Issuing may finish warps; CTA retirement (which removes warps
            // and would invalidate the remaining pick indices) is deferred
            // until every pick of this cycle has issued.
            let mut retire: Vec<u64> = Vec::new();
            for &(_, idx) in &picks {
                if let Some(cta) = self.issue(
                    idx,
                    now,
                    period_ps,
                    mem,
                    lat,
                    counters,
                    &mut mem_lat_sum_ns,
                    &mut mem_lat_count,
                ) {
                    retire.push(cta);
                }
            }
            for cta in retire {
                self.maybe_retire_cta(cta);
            }
            if self.warps.iter().all(|w| !w.is_live())
                && self.pending_ctas.is_empty()
                && self.kernel.is_some()
                && self.finish_time.is_none()
            {
                self.finish_time = Some(now + Time::from_ps(period_ps));
            }
            c += 1;
        }

        counters[TotalCycles] += cycles as f64;
        if cycles > 0 {
            counters[Occupancy] = occupancy_sum as f64 / (cycles as f64 * self.max_warps as f64);
        }
        if mem_lat_count > 0 {
            counters[AvgMemLatencyNs] = mem_lat_sum_ns / mem_lat_count as f64;
        }
        counters.recompute_derived();

        EpochOutcome {
            instructions: (counters[TotalInstrs] - start_instrs) as u64,
            finished_at: self.finish_time,
            skipped_cycles: skipped,
        }
    }

    /// Issues the next instruction of warp `idx` at time `now`. Returns the
    /// warp's CTA id if the warp just finished its program (the caller must
    /// then retire the CTA once the cycle's issues are complete).
    #[allow(clippy::too_many_arguments)]
    fn issue(
        &mut self,
        idx: usize,
        now: Time,
        period_ps: u64,
        mem: &mut ClusterMemory,
        lat: &LatencyTable,
        counters: &mut EpochCounters,
        mem_lat_sum_ns: &mut f64,
        mem_lat_count: &mut u64,
    ) -> Option<u64> {
        use CounterId::*;
        let kernel = self.kernel.as_ref().expect("issue requires an assigned kernel");
        let warp = &mut self.warps[idx];
        let block = &kernel.blocks()[warp.cursor.block];
        let class = block.instrs[warp.cursor.instr].class;
        let div_prob = block.divergence_prob;
        let mem_behavior = kernel.mem();
        self.last_issued_age = warp.age;

        counters[TotalInstrs] += 1.0;
        let class_counter = match class {
            InstrClass::IntAlu => IntAluInstrs,
            InstrClass::FpAlu => FpAluInstrs,
            InstrClass::Sfu => SfuInstrs,
            InstrClass::LoadGlobal => LoadGlobalInstrs,
            InstrClass::LoadShared => LoadSharedInstrs,
            InstrClass::StoreGlobal => StoreGlobalInstrs,
            InstrClass::StoreShared => StoreSharedInstrs,
            InstrClass::Branch => BranchInstrs,
            InstrClass::Barrier => BarrierInstrs,
        };
        counters[class_counter] += 1.0;

        // Determine the wait the instruction imposes; `None` means the warp
        // parks at a barrier instead.
        let cycles_at = |n: u32| Time::from_ps(n as u64 * period_ps);
        let wait: Option<(Time, WaitCause)> = match class {
            InstrClass::IntAlu | InstrClass::FpAlu | InstrClass::Sfu => {
                Some((now + cycles_at(lat.fixed_latency(class)), WaitCause::Exec))
            }
            InstrClass::LoadShared => {
                counters[SharedAccesses] += 1.0;
                Some((now + cycles_at(lat.load_shared), WaitCause::MemLoad))
            }
            InstrClass::StoreShared => {
                counters[SharedAccesses] += 1.0;
                Some((now + cycles_at(lat.store_shared), WaitCause::MemStore))
            }
            InstrClass::LoadGlobal => {
                let addr = warp.next_address(&mem_behavior);
                let r = mem.load(addr, now, period_ps);
                counters[L1ReadAccess] += 1.0;
                counters[MemTransactions] += 1.0;
                match r.level {
                    MemLevel::L1 => {}
                    MemLevel::L2 => {
                        counters[L1ReadMiss] += 1.0;
                        counters[L2Access] += 1.0;
                    }
                    MemLevel::Dram => {
                        counters[L1ReadMiss] += 1.0;
                        counters[L2Access] += 1.0;
                        counters[L2Miss] += 1.0;
                        counters[DramReads] += 1.0;
                        counters[DramQueueNs] += r.queue_ns;
                    }
                }
                *mem_lat_sum_ns += r.latency.as_nanos();
                *mem_lat_count += 1;
                Some((now + r.latency, WaitCause::MemLoad))
            }
            InstrClass::StoreGlobal => {
                let addr = warp.next_address(&mem_behavior);
                let level = mem.store(addr, now);
                counters[L1WriteAccess] += 1.0;
                counters[MemTransactions] += 1.0;
                counters[L2Access] += 1.0;
                match level {
                    MemLevel::L1 => {}
                    MemLevel::L2 => counters[L1WriteMiss] += 1.0,
                    MemLevel::Dram => {
                        counters[L1WriteMiss] += 1.0;
                        counters[L2Miss] += 1.0;
                        counters[DramWrites] += 1.0;
                    }
                }
                Some((now + cycles_at(lat.store_global), WaitCause::MemStore))
            }
            InstrClass::Branch => {
                let diverged = warp.draw_divergence(div_prob);
                let penalty = if diverged {
                    counters[DivergentBranches] += 1.0;
                    lat.branch + lat.divergence_penalty
                } else {
                    lat.branch
                };
                Some((now + cycles_at(penalty), WaitCause::Control))
            }
            InstrClass::Barrier => None,
        };

        let live = warp.advance_cursor(kernel);
        let cta_id = warp.cta_id;
        if live {
            match wait {
                Some((until, cause)) => warp.wait(until, cause),
                None => {
                    warp.state = WarpState::AtBarrier;
                    self.maybe_release_barrier(cta_id);
                }
            }
            None
        } else {
            // The warp finished; a trailing barrier is a no-op for it but may
            // unblock its siblings. Retirement of the CTA is deferred to the
            // caller, which must call `maybe_retire_cta` once the cycle's
            // issues are done.
            if wait.is_none() {
                self.maybe_release_barrier(cta_id);
            }
            Some(cta_id)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{BasicBlock, MemoryBehavior};
    use crate::memory::MemoryConfig;

    const PERIOD: u64 = 858;
    const EPOCH_CYCLES: u64 = 50_000;

    fn compute_kernel(iterations: u32) -> KernelSpec {
        KernelSpec::new(
            "compute",
            vec![BasicBlock::new(vec![InstrClass::IntAlu, InstrClass::FpAlu], iterations, 0.0)],
            2,
            4,
            MemoryBehavior::streaming(1 << 16),
        )
    }

    fn memory_kernel(iterations: u32) -> KernelSpec {
        KernelSpec::new(
            "memory",
            vec![BasicBlock::new(
                vec![InstrClass::LoadGlobal, InstrClass::IntAlu],
                iterations,
                0.0,
            )],
            2,
            4,
            MemoryBehavior::streaming(64 << 20),
        )
    }

    fn run_to_idle(sm: &mut SmCore, mem: &mut ClusterMemory) -> (EpochCounters, Time) {
        let lat = LatencyTable::titan_x();
        let mut counters = EpochCounters::zeroed();
        let mut start = Time::ZERO;
        for _ in 0..100 {
            sm.run_epoch(start, EPOCH_CYCLES, PERIOD, mem, &lat, &mut counters);
            start += Time::from_ps(EPOCH_CYCLES * PERIOD);
            if sm.is_idle() {
                return (counters, sm.finish_time().expect("idle SM records a finish time"));
            }
        }
        panic!("kernel did not finish in 100 epochs");
    }

    #[test]
    fn kernel_retires_exactly_its_instructions() {
        let k = compute_kernel(50);
        let total = k.total_instructions();
        let mut sm = SmCore::new(16, 2);
        sm.assign_kernel(k, (0..4).collect(), 1);
        let mut mem = ClusterMemory::new(MemoryConfig::titan_x());
        let (counters, _) = run_to_idle(&mut sm, &mut mem);
        assert_eq!(counters[CounterId::TotalInstrs] as u64, total);
        assert_eq!(
            counters[CounterId::IntAluInstrs] as u64 + counters[CounterId::FpAluInstrs] as u64,
            total
        );
    }

    #[test]
    fn compute_kernel_scales_with_frequency() {
        // The same kernel at half the clock should take roughly twice as long.
        let run_at = |period: u64| {
            let mut sm = SmCore::new(16, 2);
            sm.assign_kernel(compute_kernel(200), (0..4).collect(), 1);
            let mut mem = ClusterMemory::new(MemoryConfig::titan_x());
            let lat = LatencyTable::titan_x();
            let mut counters = EpochCounters::zeroed();
            let mut start = Time::ZERO;
            for _ in 0..200 {
                sm.run_epoch(start, 20_000, period, &mut mem, &lat, &mut counters);
                start += Time::from_ps(20_000 * period);
                if sm.is_idle() {
                    return sm.finish_time().unwrap().as_nanos();
                }
            }
            panic!("did not finish");
        };
        let fast = run_at(858);
        let slow = run_at(1716);
        let ratio = slow / fast;
        assert!(
            (1.8..2.2).contains(&ratio),
            "compute-bound slowdown should track frequency, got {ratio:.3}"
        );
    }

    #[test]
    fn memory_kernel_is_frequency_insensitive() {
        let run_at = |period: u64| {
            let mut sm = SmCore::new(16, 2);
            sm.assign_kernel(memory_kernel(100), (0..4).collect(), 1);
            let mut mem = ClusterMemory::new(MemoryConfig::titan_x());
            let lat = LatencyTable::titan_x();
            let mut counters = EpochCounters::zeroed();
            let mut start = Time::ZERO;
            for _ in 0..400 {
                sm.run_epoch(start, 20_000, period, &mut mem, &lat, &mut counters);
                start += Time::from_ps(20_000 * period);
                if sm.is_idle() {
                    return sm.finish_time().unwrap().as_nanos();
                }
            }
            panic!("did not finish");
        };
        let fast = run_at(858);
        let slow = run_at(1716);
        let ratio = slow / fast;
        assert!(
            ratio < 1.5,
            "memory-bound kernel should barely slow down at half clock, got {ratio:.3}"
        );
    }

    #[test]
    fn stalls_reflect_boundedness() {
        let lat = LatencyTable::titan_x();
        // Memory-bound kernel accumulates load stalls.
        let mut sm = SmCore::new(8, 2);
        sm.assign_kernel(memory_kernel(100), (0..4).collect(), 1);
        let mut mem = ClusterMemory::new(MemoryConfig::titan_x());
        let mut counters = EpochCounters::zeroed();
        sm.run_epoch(Time::ZERO, EPOCH_CYCLES, PERIOD, &mut mem, &lat, &mut counters);
        assert!(
            counters[CounterId::StallMemLoad] > counters[CounterId::StallDataDep],
            "memory kernel must be dominated by memory-hazard stalls"
        );
        assert!(counters[CounterId::L1ReadAccess] > 0.0);
        assert!(counters[CounterId::DramReads] > 0.0);
    }

    #[test]
    fn barrier_synchronizes_cta() {
        let k = KernelSpec::new(
            "bar",
            vec![
                BasicBlock::new(vec![InstrClass::IntAlu, InstrClass::Barrier], 3, 0.0),
                BasicBlock::new(vec![InstrClass::FpAlu], 2, 0.0),
            ],
            4,
            2,
            MemoryBehavior::streaming(1 << 16),
        );
        let total = k.total_instructions();
        let mut sm = SmCore::new(16, 2);
        sm.assign_kernel(k, vec![0, 1], 1);
        let mut mem = ClusterMemory::new(MemoryConfig::titan_x());
        let (counters, _) = run_to_idle(&mut sm, &mut mem);
        assert_eq!(counters[CounterId::TotalInstrs] as u64, total);
        assert_eq!(counters[CounterId::BarrierInstrs] as u64, 3 * 4 * 2);
    }

    #[test]
    fn cta_capacity_limits_residency_but_all_work_completes() {
        let k = compute_kernel(20); // 4 CTAs x 2 warps, SM holds only 1 CTA at a time
        let total = k.total_instructions();
        let mut sm = SmCore::new(2, 2);
        sm.assign_kernel(k, (0..4).collect(), 1);
        let mut mem = ClusterMemory::new(MemoryConfig::titan_x());
        let (counters, _) = run_to_idle(&mut sm, &mut mem);
        assert_eq!(counters[CounterId::TotalInstrs] as u64, total);
    }

    #[test]
    fn idle_sm_accumulates_empty_stalls() {
        let mut sm = SmCore::new(4, 2);
        let lat = LatencyTable::titan_x();
        let mut mem = ClusterMemory::new(MemoryConfig::titan_x());
        let mut counters = EpochCounters::zeroed();
        sm.run_epoch(Time::ZERO, 1_000, PERIOD, &mut mem, &lat, &mut counters);
        assert_eq!(counters[CounterId::StallEmpty], 1_000.0);
        assert_eq!(counters[CounterId::TotalInstrs], 0.0);
    }

    #[test]
    fn replay_determinism_across_frequencies() {
        // The instruction totals of a finished kernel are identical no
        // matter the frequency schedule it ran under.
        let totals_at = |period: u64| {
            let mut sm = SmCore::new(8, 2);
            sm.assign_kernel(memory_kernel(30), (0..2).collect(), 7);
            let mut mem = ClusterMemory::new(MemoryConfig::titan_x());
            let (counters, _) = {
                let lat = LatencyTable::titan_x();
                let mut counters = EpochCounters::zeroed();
                let mut start = Time::ZERO;
                loop {
                    sm.run_epoch(start, 20_000, period, &mut mem, &lat, &mut counters);
                    start += Time::from_ps(20_000 * period);
                    if sm.is_idle() {
                        break (counters, ());
                    }
                }
            };
            (counters[CounterId::TotalInstrs] as u64, counters[CounterId::LoadGlobalInstrs] as u64)
        };
        assert_eq!(totals_at(858), totals_at(1464));
    }

    #[test]
    #[should_panic(expected = "warps per CTA")]
    fn oversized_cta_rejected() {
        let mut sm = SmCore::new(2, 1);
        let k = KernelSpec::new(
            "big",
            vec![BasicBlock::new(vec![InstrClass::IntAlu], 1, 0.0)],
            8,
            1,
            MemoryBehavior::streaming(1024),
        );
        sm.assign_kernel(k, vec![0], 1);
    }
}
