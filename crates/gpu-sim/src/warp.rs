//! Warp execution state.
//!
//! A warp walks its kernel's basic blocks with a [`Cursor`]; its scheduling
//! state is one of: ready to issue, waiting on a pipeline or memory, parked
//! at a barrier, or finished. All randomness (divergence outcomes, memory
//! addresses) comes from a per-warp [`SplitMix64`] stream whose draws depend
//! only on the instruction sequence, never on timing.

use serde::{Deserialize, Serialize};

use crate::kernel::{KernelSpec, MemoryBehavior};
use crate::rng::{mix_seed, SplitMix64};
use crate::time::Time;

/// Why a warp is not ready to issue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WaitCause {
    /// Waiting for an execution-pipeline result (data dependence).
    Exec,
    /// Waiting for branch resolution (control hazard).
    Control,
    /// Waiting for a load to return (memory hazard, load).
    MemLoad,
    /// Waiting for a store/fence slot (memory hazard, other than load).
    MemStore,
}

/// A warp's scheduling state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WarpState {
    /// Can issue its next instruction.
    Ready,
    /// Blocked until the given absolute time.
    Waiting {
        /// Absolute wake-up time.
        until: Time,
        /// What the warp is waiting on (for stall attribution).
        cause: WaitCause,
    },
    /// Parked at a CTA barrier.
    AtBarrier,
    /// Program complete.
    Finished,
}

/// Position in the kernel program: which block, which loop iteration, which
/// instruction within the block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Cursor {
    /// Basic-block index.
    pub block: usize,
    /// Current iteration of the block's loop.
    pub iter: u32,
    /// Instruction index within the block.
    pub instr: usize,
}

/// One resident warp on an SM.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Warp {
    /// Global CTA index this warp belongs to.
    pub cta_id: u64,
    /// Globally unique warp index (for address seeding).
    pub global_id: u64,
    /// Program position.
    pub cursor: Cursor,
    /// Scheduling state.
    pub state: WarpState,
    /// Issue-order stamp for greedy-then-oldest scheduling.
    pub age: u64,
    rng: SplitMix64,
    seq_cursor: u64,
}

impl Warp {
    /// Creates a fresh warp at the start of the program.
    pub fn new(cta_id: u64, global_id: u64, seed: u64, age: u64) -> Warp {
        Warp {
            cta_id,
            global_id,
            cursor: Cursor::default(),
            state: WarpState::Ready,
            age,
            rng: SplitMix64::new(mix_seed(seed, global_id)),
            seq_cursor: 0,
        }
    }

    /// Returns `true` unless the warp has completed its program.
    pub fn is_live(&self) -> bool {
        self.state != WarpState::Finished
    }

    /// Advances the cursor past the instruction just issued, following the
    /// block's loop structure. Sets the warp to `Finished` when the program
    /// ends. Returns `true` if the warp is still live.
    pub fn advance_cursor(&mut self, kernel: &KernelSpec) -> bool {
        let blocks = kernel.blocks();
        let block = &blocks[self.cursor.block];
        self.cursor.instr += 1;
        if self.cursor.instr >= block.instrs.len() {
            self.cursor.instr = 0;
            self.cursor.iter += 1;
            if self.cursor.iter >= block.iterations {
                self.cursor.iter = 0;
                self.cursor.block += 1;
                if self.cursor.block >= blocks.len() {
                    self.state = WarpState::Finished;
                    return false;
                }
            }
        }
        true
    }

    /// Draws whether the branch about to execute diverges.
    pub fn draw_divergence(&mut self, prob: f32) -> bool {
        if prob <= 0.0 {
            // Keep the draw-count identical regardless of probability so the
            // address stream stays frequency-invariant... it already is:
            // draws only depend on instruction sequence. Skipping the draw
            // for prob == 0 is safe because the program (not timing)
            // determines whether this path is taken.
            return false;
        }
        self.rng.next_f32() < prob
    }

    /// Generates the next global-memory byte address for this warp given the
    /// kernel's memory behaviour.
    pub fn next_address(&mut self, mem: &MemoryBehavior) -> u64 {
        let ws = mem.working_set_bytes;
        let r = self.rng.next_f32();
        if r < mem.hot_frac {
            // Hot region shared by every warp: high temporal locality.
            self.rng.next_below(mem.hot_region_bytes())
        } else if r < mem.hot_frac + mem.random_frac {
            // Irregular access anywhere in the working set.
            self.rng.next_below(ws)
        } else {
            // Per-warp sequential stream: each warp owns an interleaved
            // region so concurrent warps stream disjoint lines.
            let base = self.global_id.wrapping_mul(997).wrapping_mul(mem.stride_bytes) % ws;
            let addr = (base + self.seq_cursor * mem.stride_bytes) % ws;
            self.seq_cursor += 1;
            addr
        }
    }

    /// Blocks the warp until `until`.
    pub fn wait(&mut self, until: Time, cause: WaitCause) {
        self.state = WarpState::Waiting { until, cause };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::InstrClass;
    use crate::kernel::BasicBlock;

    fn kernel() -> KernelSpec {
        KernelSpec::new(
            "k",
            vec![
                BasicBlock::new(vec![InstrClass::IntAlu, InstrClass::FpAlu], 2, 0.0),
                BasicBlock::new(vec![InstrClass::Branch], 1, 1.0),
            ],
            1,
            1,
            MemoryBehavior::streaming(1 << 16),
        )
    }

    #[test]
    fn cursor_walks_blocks_iterations_and_finishes() {
        let k = kernel();
        let mut w = Warp::new(0, 0, 1, 0);
        let mut executed = 0;
        while w.is_live() {
            executed += 1;
            if !w.advance_cursor(&k) {
                break;
            }
        }
        assert_eq!(executed as u64, k.instructions_per_warp());
        assert_eq!(w.state, WarpState::Finished);
    }

    #[test]
    fn divergence_draws_match_probability() {
        let mut w = Warp::new(0, 0, 99, 0);
        let n = 10_000;
        let diverged = (0..n).filter(|_| w.draw_divergence(0.3)).count();
        let rate = diverged as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
        assert!(!(0..100).any(|_| w.draw_divergence(0.0)));
    }

    #[test]
    fn identical_warps_generate_identical_streams() {
        let mem = MemoryBehavior::new(1 << 20, 128, 0.3, 0.2);
        let mut a = Warp::new(0, 5, 42, 0);
        let mut b = Warp::new(0, 5, 42, 7); // age must not affect the stream
        for _ in 0..1_000 {
            assert_eq!(a.next_address(&mem), b.next_address(&mem));
        }
    }

    #[test]
    fn distinct_warps_stream_disjoint_sequential_regions() {
        let mem = MemoryBehavior::streaming(1 << 20);
        let mut a = Warp::new(0, 0, 42, 0);
        let mut b = Warp::new(0, 1, 42, 0);
        let a0 = a.next_address(&mem);
        let b0 = b.next_address(&mem);
        assert_ne!(a0 / 128, b0 / 128, "warps must not collide on the same line");
        // Sequential accesses advance by the stride.
        let a1 = a.next_address(&mem);
        assert_eq!(a1, (a0 + 128) % (1 << 20));
    }

    #[test]
    fn addresses_stay_inside_working_set() {
        let mem = MemoryBehavior::new(4096, 128, 0.5, 0.25);
        let mut w = Warp::new(0, 3, 7, 0);
        for _ in 0..10_000 {
            assert!(w.next_address(&mem) < 4096);
        }
    }

    #[test]
    fn wait_and_wake() {
        let mut w = Warp::new(0, 0, 1, 0);
        w.wait(Time::from_nanos(100.0), WaitCause::MemLoad);
        assert!(matches!(w.state, WarpState::Waiting { cause: WaitCause::MemLoad, .. }));
        assert!(w.is_live());
    }
}
