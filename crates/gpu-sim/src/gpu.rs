//! Whole-GPU configuration.

use gpu_power::{PowerModelConfig, VfTable};
use serde::{Deserialize, Serialize};

use crate::isa::LatencyTable;
use crate::memory::MemoryConfig;
use crate::time::Time;

/// Configuration of the simulated GPU.
///
/// # Examples
///
/// ```
/// use gpu_sim::GpuConfig;
///
/// let cfg = GpuConfig::titan_x();
/// assert_eq!(cfg.num_clusters, 24);
/// assert_eq!(cfg.epoch.as_micros(), 10.0);
///
/// // A smaller GPU for fast tests.
/// let small = GpuConfig::small_test();
/// assert!(small.num_clusters < cfg.num_clusters);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuConfig {
    /// Number of DVFS-controllable clusters.
    pub num_clusters: usize,
    /// SMs per cluster sharing one clock domain (the paper's Titan X setup
    /// uses 1; larger values coarsen the DVFS granularity).
    pub sms_per_cluster: usize,
    /// Resident warp slots per SM.
    pub max_warps_per_sm: usize,
    /// Instructions issued per SM per cycle.
    pub issue_width: usize,
    /// DVFS epoch length (the paper uses 10 µs).
    pub epoch: Time,
    /// Settle time charged when a cluster changes operating point
    /// (integrated voltage regulators settle in well under a microsecond).
    pub dvfs_transition: Time,
    /// The DVFS operating-point table.
    pub vf_table: VfTable,
    /// Execution-pipeline latencies.
    pub latencies: LatencyTable,
    /// Memory-hierarchy parameters.
    pub memory: MemoryConfig,
    /// Power-model constants.
    pub power: PowerModelConfig,
    /// Seed for the deterministic per-warp streams.
    pub seed: u64,
}

impl GpuConfig {
    /// The paper's evaluation platform: a GTX-Titan-X-class GPU with 24
    /// clusters, 10 µs DVFS epochs and the six-point V/f table.
    pub fn titan_x() -> GpuConfig {
        GpuConfig {
            num_clusters: 24,
            sms_per_cluster: 1,
            max_warps_per_sm: 48,
            issue_width: 2,
            epoch: Time::from_micros(10.0),
            dvfs_transition: Time::from_nanos(100.0),
            vf_table: VfTable::titan_x(),
            latencies: LatencyTable::titan_x(),
            memory: MemoryConfig::titan_x(),
            power: PowerModelConfig::titan_x(),
            seed: 0x55AA_1234,
        }
    }

    /// A scaled-down GPU (2 clusters, 16 warp slots) with identical timing
    /// parameters, for fast unit and integration tests.
    pub fn small_test() -> GpuConfig {
        GpuConfig { num_clusters: 2, max_warps_per_sm: 16, ..GpuConfig::titan_x() }
    }

    /// Returns a copy with a different seed (for workload replication).
    pub fn with_seed(mut self, seed: u64) -> GpuConfig {
        self.seed = seed;
        self
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or the transition time exceeds the
    /// epoch.
    pub fn validate(&self) {
        assert!(self.num_clusters > 0, "a GPU needs at least one cluster");
        assert!(self.sms_per_cluster > 0, "a cluster needs at least one SM");
        assert!(self.max_warps_per_sm > 0, "an SM needs warp slots");
        assert!(self.issue_width > 0, "issue width must be positive");
        assert!(self.epoch > Time::ZERO, "epoch must be non-empty");
        assert!(
            self.dvfs_transition < self.epoch,
            "DVFS transition time must be shorter than an epoch"
        );
    }
}

impl Default for GpuConfig {
    fn default() -> GpuConfig {
        GpuConfig::titan_x()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn titan_x_is_valid_and_matches_paper() {
        let cfg = GpuConfig::titan_x();
        cfg.validate();
        assert_eq!(cfg.num_clusters, 24);
        assert_eq!(cfg.vf_table.len(), 6);
        assert_eq!(cfg.epoch, Time::from_micros(10.0));
    }

    #[test]
    fn small_test_is_valid() {
        GpuConfig::small_test().validate();
    }

    #[test]
    fn with_seed_changes_only_the_seed() {
        let a = GpuConfig::titan_x();
        let b = a.clone().with_seed(7);
        assert_eq!(a.num_clusters, b.num_clusters);
        assert_ne!(a.seed, b.seed);
    }

    #[test]
    #[should_panic(expected = "transition time")]
    fn transition_longer_than_epoch_rejected() {
        let mut cfg = GpuConfig::titan_x();
        cfg.dvfs_transition = Time::from_micros(20.0);
        cfg.validate();
    }
}
