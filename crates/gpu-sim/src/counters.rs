//! The per-epoch performance-counter set.
//!
//! The paper's data-generation step collects **47 performance counters** per
//! 10 µs epoch, grouped into instruction metrics, execution-stall metrics and
//! power metrics (Section III-B). This module defines the same 47-counter
//! vector; the SSMDVFS feature-selection stage (Table I) later narrows it to
//! five: IPC, PPC, MH, MH\L and L1CRM.

use std::fmt;
use std::ops::{Index, IndexMut};

use serde::{Deserialize, Serialize};

/// The broad counter category, matching the paper's taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CounterCategory {
    /// Instruction counts and rates.
    Instruction,
    /// Stall cycles by cause, occupancy and latency observations.
    Stall,
    /// Cache and DRAM traffic.
    Cache,
    /// Power and energy (filled in from the power model).
    Power,
}

macro_rules! counters {
    ($( $variant:ident => ($name:literal, $cat:ident) ),+ $(,)?) => {
        /// Identifier of one of the 47 per-epoch performance counters.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
        #[repr(usize)]
        pub enum CounterId {
            $(
                #[doc = $name]
                $variant,
            )+
        }

        impl CounterId {
            /// Every counter, in index order.
            pub const ALL: [CounterId; CounterId::COUNT] = [ $(CounterId::$variant),+ ];

            /// Number of counters.
            pub const COUNT: usize = 0 $( + { let _ = CounterId::$variant; 1 } )+;

            /// Human-readable counter name.
            pub fn name(self) -> &'static str {
                match self {
                    $( CounterId::$variant => $name, )+
                }
            }

            /// The counter's category.
            pub fn category(self) -> CounterCategory {
                match self {
                    $( CounterId::$variant => CounterCategory::$cat, )+
                }
            }
        }
    };
}

counters! {
    // ---- Instruction metrics ------------------------------------------
    TotalInstrs        => ("total_instrs", Instruction),
    IntAluInstrs       => ("int_alu_instrs", Instruction),
    FpAluInstrs        => ("fp_alu_instrs", Instruction),
    SfuInstrs          => ("sfu_instrs", Instruction),
    LoadGlobalInstrs   => ("load_global_instrs", Instruction),
    LoadSharedInstrs   => ("load_shared_instrs", Instruction),
    StoreGlobalInstrs  => ("store_global_instrs", Instruction),
    StoreSharedInstrs  => ("store_shared_instrs", Instruction),
    BranchInstrs       => ("branch_instrs", Instruction),
    BarrierInstrs      => ("barrier_instrs", Instruction),
    Ipc                => ("ipc", Instruction),
    MemInstrRatio      => ("mem_instr_ratio", Instruction),
    ComputeInstrRatio  => ("compute_instr_ratio", Instruction),

    // ---- Execution stall metrics --------------------------------------
    StallMemLoad       => ("stall_mem_load", Stall),
    StallMemOther      => ("stall_mem_other", Stall),
    StallControl       => ("stall_control", Stall),
    StallBarrier       => ("stall_barrier", Stall),
    StallDataDep       => ("stall_data_dep", Stall),
    StallEmpty         => ("stall_empty", Stall),
    StallTotal         => ("stall_total", Stall),
    IssuedCycles       => ("issued_cycles", Stall),
    ActiveCycles       => ("active_cycles", Stall),
    TotalCycles        => ("total_cycles", Stall),
    Occupancy          => ("occupancy", Stall),
    AvgMemLatencyNs    => ("avg_mem_latency_ns", Stall),
    DivergentBranches  => ("divergent_branches", Stall),
    MemStallFrac       => ("mem_stall_frac", Stall),

    // ---- Cache / traffic metrics ---------------------------------------
    L1ReadAccess       => ("l1_read_access", Cache),
    L1ReadMiss         => ("l1_read_miss", Cache),
    L1ReadMissRate     => ("l1_read_miss_rate", Cache),
    L1WriteAccess      => ("l1_write_access", Cache),
    L1WriteMiss        => ("l1_write_miss", Cache),
    L2Access           => ("l2_access", Cache),
    L2Miss             => ("l2_miss", Cache),
    L2MissRate         => ("l2_miss_rate", Cache),
    DramReads          => ("dram_reads", Cache),
    DramWrites         => ("dram_writes", Cache),
    DramQueueNs        => ("dram_queue_ns", Cache),
    SharedAccesses     => ("shared_accesses", Cache),
    MemTransactions    => ("mem_transactions", Cache),

    // ---- Power metrics --------------------------------------------------
    PowerTotalW        => ("power_total_w", Power),
    PowerDynamicW      => ("power_dynamic_w", Power),
    PowerLeakageW      => ("power_leakage_w", Power),
    PowerComputeW      => ("power_compute_w", Power),
    PowerClockW        => ("power_clock_w", Power),
    PowerMemoryW       => ("power_memory_w", Power),
    EnergyEpochJ       => ("energy_epoch_j", Power),
}

/// The values of all 47 counters for one cluster over one epoch.
///
/// # Examples
///
/// ```
/// use gpu_sim::{CounterId, EpochCounters};
///
/// let mut c = EpochCounters::zeroed();
/// c[CounterId::TotalInstrs] = 1000.0;
/// c[CounterId::TotalCycles] = 500.0;
/// assert_eq!(c[CounterId::TotalInstrs], 1000.0);
/// assert_eq!(c.to_vec().len(), CounterId::COUNT);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpochCounters {
    values: Vec<f64>,
}

impl EpochCounters {
    /// Creates an all-zero counter set.
    pub fn zeroed() -> EpochCounters {
        EpochCounters { values: vec![0.0; CounterId::COUNT] }
    }

    /// The raw values in [`CounterId::ALL`] order.
    pub fn to_vec(&self) -> Vec<f64> {
        self.values.clone()
    }

    /// Borrows the raw values in [`CounterId::ALL`] order.
    pub fn as_slice(&self) -> &[f64] {
        &self.values
    }

    /// Iterates `(id, value)` pairs in index order.
    pub fn iter(&self) -> impl Iterator<Item = (CounterId, f64)> + '_ {
        CounterId::ALL.iter().map(move |&id| (id, self.values[id as usize]))
    }

    /// Adds `other` into `self` for the additive (count-like) counters and
    /// recomputes the derived rate counters. Used to aggregate multiple
    /// epochs or clusters.
    pub fn merge(&mut self, other: &EpochCounters) {
        use CounterId::*;
        for id in CounterId::ALL {
            match id {
                Ipc | MemInstrRatio | ComputeInstrRatio | Occupancy | AvgMemLatencyNs
                | L1ReadMissRate | L2MissRate | MemStallFrac | PowerTotalW | PowerDynamicW
                | PowerLeakageW | PowerComputeW | PowerClockW | PowerMemoryW => {}
                _ => self.values[id as usize] += other.values[id as usize],
            }
        }
        self.recompute_derived();
    }

    /// Recomputes the derived rate counters (IPC, miss rates, ratios) from
    /// the raw counts currently stored.
    pub fn recompute_derived(&mut self) {
        use CounterId::*;
        let ratio = |num: f64, den: f64| if den > 0.0 { num / den } else { 0.0 };
        let total = self[TotalInstrs];
        let cycles = self[TotalCycles];
        self[Ipc] = ratio(total, cycles);
        let mem_instrs = self[LoadGlobalInstrs]
            + self[LoadSharedInstrs]
            + self[StoreGlobalInstrs]
            + self[StoreSharedInstrs];
        let compute_instrs = self[IntAluInstrs] + self[FpAluInstrs] + self[SfuInstrs];
        self[MemInstrRatio] = ratio(mem_instrs, total);
        self[ComputeInstrRatio] = ratio(compute_instrs, total);
        self[L1ReadMissRate] = ratio(self[L1ReadMiss], self[L1ReadAccess]);
        self[L2MissRate] = ratio(self[L2Miss], self[L2Access]);
        self[StallTotal] = self[StallMemLoad]
            + self[StallMemOther]
            + self[StallControl]
            + self[StallBarrier]
            + self[StallDataDep]
            + self[StallEmpty];
        self[MemStallFrac] = ratio(self[StallMemLoad] + self[StallMemOther], cycles);
    }

    /// Total warp-instructions executed this epoch.
    pub fn total_instructions(&self) -> f64 {
        self[CounterId::TotalInstrs]
    }
}

impl Default for EpochCounters {
    fn default() -> EpochCounters {
        EpochCounters::zeroed()
    }
}

impl Index<CounterId> for EpochCounters {
    type Output = f64;
    fn index(&self, id: CounterId) -> &f64 {
        &self.values[id as usize]
    }
}

impl IndexMut<CounterId> for EpochCounters {
    fn index_mut(&mut self, id: CounterId) -> &mut f64 {
        &mut self.values[id as usize]
    }
}

impl fmt::Display for EpochCounters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "EpochCounters:")?;
        for (id, v) in self.iter() {
            if v != 0.0 {
                writeln!(f, "  {:<22} {v:.4}", id.name())?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn there_are_exactly_47_counters() {
        assert_eq!(CounterId::COUNT, 47);
        assert_eq!(CounterId::ALL.len(), 47);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = CounterId::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), CounterId::COUNT);
    }

    #[test]
    fn category_counts_match_taxonomy() {
        let count =
            |cat: CounterCategory| CounterId::ALL.iter().filter(|c| c.category() == cat).count();
        assert_eq!(count(CounterCategory::Instruction), 13);
        assert_eq!(count(CounterCategory::Stall), 14);
        assert_eq!(count(CounterCategory::Cache), 13);
        assert_eq!(count(CounterCategory::Power), 7);
    }

    #[test]
    fn derived_counters() {
        use CounterId::*;
        let mut c = EpochCounters::zeroed();
        c[TotalInstrs] = 100.0;
        c[TotalCycles] = 200.0;
        c[LoadGlobalInstrs] = 25.0;
        c[IntAluInstrs] = 50.0;
        c[L1ReadAccess] = 10.0;
        c[L1ReadMiss] = 4.0;
        c[StallMemLoad] = 30.0;
        c[StallEmpty] = 10.0;
        c.recompute_derived();
        assert_eq!(c[Ipc], 0.5);
        assert_eq!(c[MemInstrRatio], 0.25);
        assert_eq!(c[ComputeInstrRatio], 0.5);
        assert_eq!(c[L1ReadMissRate], 0.4);
        assert_eq!(c[StallTotal], 40.0);
        assert_eq!(c[MemStallFrac], 0.15);
    }

    #[test]
    fn merge_adds_counts_and_recomputes_rates() {
        use CounterId::*;
        let mut a = EpochCounters::zeroed();
        a[TotalInstrs] = 100.0;
        a[TotalCycles] = 100.0;
        a.recompute_derived();
        let mut b = EpochCounters::zeroed();
        b[TotalInstrs] = 50.0;
        b[TotalCycles] = 100.0;
        b.recompute_derived();
        a.merge(&b);
        assert_eq!(a[TotalInstrs], 150.0);
        assert_eq!(a[TotalCycles], 200.0);
        assert_eq!(a[Ipc], 0.75);
    }

    #[test]
    fn zero_division_is_safe() {
        let mut c = EpochCounters::zeroed();
        c.recompute_derived();
        assert_eq!(c[CounterId::Ipc], 0.0);
        assert_eq!(c[CounterId::L1ReadMissRate], 0.0);
    }
}
