//! The procedural kernel/workload model.
//!
//! Real GPGPU-Sim executes CUDA binaries; this simulator executes *kernel
//! specifications*: loops of basic blocks whose instruction mixes, memory
//! footprints and divergence behaviour are parameterized to match the
//! characteristics of the benchmark being modeled. A warp's instruction
//! stream is a pure function of the kernel spec and the warp's identity, so
//! replaying a program segment at a different clock frequency executes an
//! identical stream — the property the paper's data-generation methodology
//! ("the total workload remains constant") relies on.

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::isa::InstrClass;

/// One instruction slot in a basic block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct InstrTemplate {
    /// The instruction's class.
    pub class: InstrClass,
}

impl InstrTemplate {
    /// Creates a template of the given class.
    pub fn new(class: InstrClass) -> InstrTemplate {
        InstrTemplate { class }
    }
}

impl From<InstrClass> for InstrTemplate {
    fn from(class: InstrClass) -> InstrTemplate {
        InstrTemplate::new(class)
    }
}

/// A straight-line block of instructions executed `iterations` times per
/// warp.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BasicBlock {
    /// The block body, executed in order.
    pub instrs: Vec<InstrTemplate>,
    /// Loop trip count (identical for every warp, keeping total work
    /// deterministic).
    pub iterations: u32,
    /// Probability that a branch in this block diverges, in [0, 1].
    pub divergence_prob: f32,
}

impl BasicBlock {
    /// Creates a block from instruction classes with a trip count.
    ///
    /// # Panics
    ///
    /// Panics if `iterations` is zero, the body is empty, or
    /// `divergence_prob` is outside [0, 1].
    pub fn new<I>(instrs: I, iterations: u32, divergence_prob: f32) -> BasicBlock
    where
        I: IntoIterator<Item = InstrClass>,
    {
        let instrs: Vec<InstrTemplate> = instrs.into_iter().map(InstrTemplate::new).collect();
        assert!(!instrs.is_empty(), "a basic block needs at least one instruction");
        assert!(iterations > 0, "a basic block must iterate at least once");
        assert!(
            (0.0..=1.0).contains(&divergence_prob),
            "divergence probability must be in [0, 1], got {divergence_prob}"
        );
        BasicBlock { instrs, iterations, divergence_prob }
    }

    /// Warp-instructions executed by one warp over all iterations.
    pub fn instructions_per_warp(&self) -> u64 {
        self.instrs.len() as u64 * self.iterations as u64
    }
}

/// How a kernel's global-memory accesses are distributed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryBehavior {
    /// Total global working-set size in bytes.
    pub working_set_bytes: u64,
    /// Stride between consecutive sequential accesses of one warp, in bytes.
    pub stride_bytes: u64,
    /// Fraction of accesses landing at a uniformly random offset in the
    /// working set (models irregular/graph access), in [0, 1].
    pub random_frac: f32,
    /// Fraction of accesses landing in a small hot region (models
    /// high-locality reuse), in [0, 1]. `random_frac + hot_frac <= 1`.
    pub hot_frac: f32,
}

impl MemoryBehavior {
    /// Creates a memory behaviour description.
    ///
    /// # Panics
    ///
    /// Panics if the working set or stride is zero, if either fraction is
    /// outside [0, 1], or if the fractions sum to more than 1.
    pub fn new(
        working_set_bytes: u64,
        stride_bytes: u64,
        random_frac: f32,
        hot_frac: f32,
    ) -> MemoryBehavior {
        assert!(working_set_bytes > 0, "working set must be non-empty");
        assert!(stride_bytes > 0, "stride must be non-zero");
        assert!((0.0..=1.0).contains(&random_frac), "random_frac must be in [0, 1]");
        assert!((0.0..=1.0).contains(&hot_frac), "hot_frac must be in [0, 1]");
        assert!(
            random_frac + hot_frac <= 1.0 + f32::EPSILON,
            "random_frac + hot_frac must not exceed 1"
        );
        MemoryBehavior { working_set_bytes, stride_bytes, random_frac, hot_frac }
    }

    /// A streaming pattern: large working set, unit-line stride, no reuse.
    pub fn streaming(working_set_bytes: u64) -> MemoryBehavior {
        MemoryBehavior::new(working_set_bytes, 128, 0.0, 0.0)
    }

    /// A cache-friendly pattern: most accesses hit a small hot region.
    pub fn cache_friendly(working_set_bytes: u64, hot_frac: f32) -> MemoryBehavior {
        MemoryBehavior::new(working_set_bytes, 128, 0.0, hot_frac)
    }

    /// An irregular pattern: a large share of random accesses.
    pub fn irregular(working_set_bytes: u64, random_frac: f32) -> MemoryBehavior {
        MemoryBehavior::new(working_set_bytes, 128, random_frac, 0.0)
    }

    /// Size in bytes of the hot region targeted by `hot_frac` accesses.
    pub fn hot_region_bytes(&self) -> u64 {
        (self.working_set_bytes / 32).clamp(1, 16 * 1024)
    }
}

/// A complete kernel: a program body plus its launch geometry and memory
/// behaviour.
///
/// # Examples
///
/// ```
/// use gpu_sim::{BasicBlock, InstrClass, KernelSpec, MemoryBehavior};
///
/// let body = vec![BasicBlock::new(
///     vec![InstrClass::LoadGlobal, InstrClass::FpAlu, InstrClass::FpAlu],
///     100,
///     0.0,
/// )];
/// let kernel = KernelSpec::new(
///     "axpy",
///     body,
///     4,  // warps per CTA
///     32, // CTAs
///     MemoryBehavior::streaming(1 << 20),
/// );
/// assert_eq!(kernel.instructions_per_warp(), 300);
/// assert_eq!(kernel.total_instructions(), 300 * 4 * 32);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelSpec {
    name: String,
    blocks: Vec<BasicBlock>,
    warps_per_cta: usize,
    num_ctas: usize,
    mem: MemoryBehavior,
}

impl KernelSpec {
    /// Creates a kernel specification.
    ///
    /// # Panics
    ///
    /// Panics if the body is empty or the launch geometry is zero-sized.
    pub fn new(
        name: impl Into<String>,
        blocks: Vec<BasicBlock>,
        warps_per_cta: usize,
        num_ctas: usize,
        mem: MemoryBehavior,
    ) -> KernelSpec {
        assert!(!blocks.is_empty(), "a kernel needs at least one basic block");
        assert!(warps_per_cta > 0, "warps per CTA must be positive");
        assert!(num_ctas > 0, "CTA count must be positive");
        KernelSpec { name: name.into(), blocks, warps_per_cta, num_ctas, mem }
    }

    /// The kernel's name (for traces and reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The program body.
    pub fn blocks(&self) -> &[BasicBlock] {
        &self.blocks
    }

    /// Warps per cooperative thread array.
    pub fn warps_per_cta(&self) -> usize {
        self.warps_per_cta
    }

    /// Number of CTAs in the launch grid.
    pub fn num_ctas(&self) -> usize {
        self.num_ctas
    }

    /// The kernel's global-memory behaviour.
    pub fn mem(&self) -> MemoryBehavior {
        self.mem
    }

    /// Warp-instructions executed by one warp through the whole program.
    pub fn instructions_per_warp(&self) -> u64 {
        self.blocks.iter().map(BasicBlock::instructions_per_warp).sum()
    }

    /// Warp-instructions executed by the whole launch grid.
    pub fn total_instructions(&self) -> u64 {
        self.instructions_per_warp() * self.warps_per_cta as u64 * self.num_ctas as u64
    }

    /// Returns a copy with the CTA count scaled by `factor` (at least 1).
    /// Used to resize benchmarks to a target runtime.
    pub fn with_cta_scale(&self, factor: f64) -> KernelSpec {
        let scaled = ((self.num_ctas as f64 * factor).round() as usize).max(1);
        KernelSpec { num_ctas: scaled, ..self.clone() }
    }
}

/// A benchmark: a named sequence of kernel launches.
///
/// # Examples
///
/// ```
/// use gpu_sim::{BasicBlock, InstrClass, KernelSpec, MemoryBehavior, Workload};
///
/// let k = KernelSpec::new(
///     "k",
///     vec![BasicBlock::new(vec![InstrClass::IntAlu], 10, 0.0)],
///     2,
///     4,
///     MemoryBehavior::streaming(4096),
/// );
/// let w = Workload::new("bench", vec![k.clone(), k]);
/// assert_eq!(w.kernels().len(), 2);
/// assert_eq!(w.total_instructions(), 2 * 10 * 2 * 4);
/// ```
/// Kernels are stored behind [`Arc`] so cloning a workload (or snapshotting a
/// simulation that owns one) shares the decoded kernel specs instead of
/// deep-copying their basic blocks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    name: String,
    kernels: Vec<Arc<KernelSpec>>,
}

impl Workload {
    /// Creates a workload from a kernel sequence. Accepts both bare
    /// [`KernelSpec`]s and already-interned `Arc<KernelSpec>`s.
    ///
    /// # Panics
    ///
    /// Panics if the sequence is empty.
    pub fn new<I, K>(name: impl Into<String>, kernels: I) -> Workload
    where
        I: IntoIterator<Item = K>,
        K: Into<Arc<KernelSpec>>,
    {
        let kernels: Vec<Arc<KernelSpec>> = kernels.into_iter().map(Into::into).collect();
        assert!(!kernels.is_empty(), "a workload needs at least one kernel");
        Workload { name: name.into(), kernels }
    }

    /// The workload's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The kernel launch sequence.
    pub fn kernels(&self) -> &[Arc<KernelSpec>] {
        &self.kernels
    }

    /// Total warp-instructions across every kernel.
    pub fn total_instructions(&self) -> u64 {
        self.kernels.iter().map(|k| k.total_instructions()).sum()
    }

    /// Returns a copy with every kernel's CTA count scaled by `factor`.
    pub fn with_cta_scale(&self, factor: f64) -> Workload {
        Workload {
            name: self.name.clone(),
            kernels: self.kernels.iter().map(|k| Arc::new(k.with_cta_scale(factor))).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_kernel() -> KernelSpec {
        KernelSpec::new(
            "k",
            vec![
                BasicBlock::new(vec![InstrClass::IntAlu, InstrClass::LoadGlobal], 5, 0.0),
                BasicBlock::new(vec![InstrClass::Branch], 2, 0.5),
            ],
            3,
            7,
            MemoryBehavior::streaming(1 << 16),
        )
    }

    #[test]
    fn instruction_accounting() {
        let k = small_kernel();
        assert_eq!(k.instructions_per_warp(), 2 * 5 + 2);
        assert_eq!(k.total_instructions(), 12 * 3 * 7);
    }

    #[test]
    fn cta_scaling_rounds_and_clamps() {
        let k = small_kernel();
        assert_eq!(k.with_cta_scale(2.0).num_ctas(), 14);
        assert_eq!(k.with_cta_scale(0.01).num_ctas(), 1);
        let w = Workload::new("w", vec![small_kernel()]);
        assert_eq!(w.with_cta_scale(3.0).kernels()[0].num_ctas(), 21);
    }

    #[test]
    fn hot_region_is_bounded() {
        let tiny = MemoryBehavior::cache_friendly(64, 0.9);
        assert!(tiny.hot_region_bytes() >= 1);
        let huge = MemoryBehavior::cache_friendly(1 << 30, 0.9);
        assert_eq!(huge.hot_region_bytes(), 16 * 1024);
    }

    #[test]
    #[should_panic(expected = "must not exceed 1")]
    fn overlapping_fractions_rejected() {
        MemoryBehavior::new(1024, 128, 0.7, 0.7);
    }

    #[test]
    #[should_panic(expected = "at least one basic block")]
    fn empty_kernel_rejected() {
        KernelSpec::new("k", vec![], 1, 1, MemoryBehavior::streaming(128));
    }

    #[test]
    #[should_panic(expected = "at least one instruction")]
    fn empty_block_rejected() {
        BasicBlock::new(Vec::<InstrClass>::new(), 1, 0.0);
    }
}
