//! One DVFS-controllable cluster: one or more SMs, their memory slices and
//! a shared clock domain.
//!
//! The paper's Titan X setup uses 24 single-SM clusters; grouping several
//! SMs under one clock domain (`sms_per_cluster > 1`) coarsens the DVFS
//! granularity — the `granularity_sweep` experiment uses this to show why
//! per-cluster control beats chip-wide control.

use std::sync::Arc;

use gpu_power::{Activity, OperatingPoint, PowerModel};
use serde::{Deserialize, Serialize};

use crate::counters::{CounterId, EpochCounters};
use crate::isa::LatencyTable;
use crate::kernel::KernelSpec;
use crate::memory::{ClusterMemory, MemoryConfig};
use crate::sm::{EngineMode, SmCore};
use crate::time::Time;

/// One cluster of the GPU: the unit at which DVFS decisions are applied.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cluster {
    id: usize,
    /// SMs sharing this cluster's clock domain; each owns a private memory
    /// slice (L1 + L2 slice + DRAM channel share).
    sms: Vec<(SmCore, ClusterMemory)>,
    lat: LatencyTable,
    op_index: usize,
    cum_instructions: u64,
}

impl Cluster {
    /// Creates an idle cluster running at operating point `op_index`.
    pub fn new(
        id: usize,
        max_warps: usize,
        issue_width: usize,
        memory: MemoryConfig,
        lat: LatencyTable,
        op_index: usize,
    ) -> Cluster {
        Cluster::with_sms(id, 1, max_warps, issue_width, memory, lat, op_index)
    }

    /// Creates a cluster with `num_sms` SMs sharing one clock domain.
    ///
    /// # Panics
    ///
    /// Panics if `num_sms` is zero.
    pub fn with_sms(
        id: usize,
        num_sms: usize,
        max_warps: usize,
        issue_width: usize,
        memory: MemoryConfig,
        lat: LatencyTable,
        op_index: usize,
    ) -> Cluster {
        assert!(num_sms > 0, "a cluster needs at least one SM");
        let sms = (0..num_sms)
            .map(|_| (SmCore::new(max_warps, issue_width), ClusterMemory::new(memory.clone())))
            .collect();
        Cluster { id, sms, lat, op_index, cum_instructions: 0 }
    }

    /// Number of SMs in the cluster.
    pub fn num_sms(&self) -> usize {
        self.sms.len()
    }

    /// The cluster's index.
    pub fn id(&self) -> usize {
        self.id
    }

    /// The operating-point index the cluster currently runs at.
    pub fn op_index(&self) -> usize {
        self.op_index
    }

    /// Total warp-instructions retired since construction.
    pub fn cum_instructions(&self) -> u64 {
        self.cum_instructions
    }

    /// Returns `true` when the cluster has no work left.
    pub fn is_idle(&self) -> bool {
        self.sms.iter().all(|(sm, _)| sm.is_idle())
    }

    /// Absolute time the cluster last ran out of work (the latest of its
    /// SMs' finish times; `None` unless every SM has finished).
    pub fn finish_time(&self) -> Option<Time> {
        self.sms
            .iter()
            .map(|(sm, _)| sm.finish_time())
            .collect::<Option<Vec<Time>>>()
            .and_then(|times| times.into_iter().max())
    }

    /// Assigns a kernel and this cluster's share of its CTAs, distributed
    /// round-robin over the cluster's SMs. The kernel spec is shared (one
    /// `Arc` clone per SM), never deep-copied.
    pub fn assign_kernel(
        &mut self,
        kernel: impl Into<Arc<KernelSpec>>,
        cta_ids: Vec<u64>,
        seed: u64,
    ) {
        let kernel: Arc<KernelSpec> = kernel.into();
        let num_sms = self.sms.len();
        for (i, (sm, _)) in self.sms.iter_mut().enumerate() {
            let share: Vec<u64> = cta_ids
                .iter()
                .enumerate()
                .filter(|(pos, _)| pos % num_sms == i)
                .map(|(_, id)| *id)
                .collect();
            sm.assign_kernel(Arc::clone(&kernel), share, seed);
        }
    }

    /// Runs one epoch of `epoch_len` wall time starting at `epoch_start`,
    /// switching to operating point `op_index` first. A change of operating
    /// point stalls the cluster for `transition` (the integrated voltage
    /// regulator's settling time).
    ///
    /// Returns the epoch's counters, including power metrics computed by
    /// `power`.
    pub fn step_epoch(
        &mut self,
        epoch_start: Time,
        epoch_len: Time,
        op_index: usize,
        op: OperatingPoint,
        transition: Time,
        power: &PowerModel,
    ) -> EpochCounters {
        self.step_epoch_mode(
            EngineMode::CycleSkip,
            epoch_start,
            epoch_len,
            op_index,
            op,
            transition,
            power,
        )
        .0
    }

    /// Like [`Cluster::step_epoch`] but with an explicit engine mode.
    /// Returns the epoch's counters plus the number of stall cycles the
    /// engine accounted for in bulk (always zero under `NaiveTick`).
    #[allow(clippy::too_many_arguments)]
    pub fn step_epoch_mode(
        &mut self,
        mode: EngineMode,
        epoch_start: Time,
        epoch_len: Time,
        op_index: usize,
        op: OperatingPoint,
        transition: Time,
        power: &PowerModel,
    ) -> (EpochCounters, u64) {
        let switching = op_index != self.op_index;
        self.op_index = op_index;
        let period_ps = op.cycle_time_ps().round() as u64;
        let usable = if switching { epoch_len.saturating_sub(transition) } else { epoch_len };
        let start = if switching { epoch_start + transition } else { epoch_start };
        let cycles = usable.cycles_at(period_ps);

        let mut counters = EpochCounters::zeroed();
        // Occupancy and average memory latency are not additive; aggregate
        // them explicitly (mean / access-weighted mean over the SMs).
        let mut occupancy_sum = 0.0;
        let mut lat_weighted = 0.0;
        let mut lat_weight = 0.0;
        let mut skipped = 0u64;
        for (sm, mem) in &mut self.sms {
            let mut sm_counters = EpochCounters::zeroed();
            let outcome =
                sm.run_epoch_mode(mode, start, cycles, period_ps, mem, &self.lat, &mut sm_counters);
            self.cum_instructions += outcome.instructions;
            skipped += outcome.skipped_cycles;
            occupancy_sum += sm_counters[CounterId::Occupancy];
            let accesses = sm_counters[CounterId::L1ReadAccess];
            lat_weighted += sm_counters[CounterId::AvgMemLatencyNs] * accesses;
            lat_weight += accesses;
            counters.merge(&sm_counters);
        }
        counters[CounterId::Occupancy] = occupancy_sum / self.sms.len() as f64;
        if lat_weight > 0.0 {
            counters[CounterId::AvgMemLatencyNs] = lat_weighted / lat_weight;
        }

        self.fill_power(&mut counters, op, epoch_len, power);
        (counters, skipped)
    }

    fn fill_power(
        &self,
        counters: &mut EpochCounters,
        op: OperatingPoint,
        epoch_len: Time,
        power: &PowerModel,
    ) {
        use CounterId::*;
        let activity = Activity {
            int_alu: counters[IntAluInstrs] as u64,
            fp_alu: counters[FpAluInstrs] as u64,
            sfu: counters[SfuInstrs] as u64,
            load: counters[LoadGlobalInstrs] as u64,
            store: counters[StoreGlobalInstrs] as u64,
            shared: counters[SharedAccesses] as u64,
            branch: counters[BranchInstrs] as u64,
            barrier: counters[BarrierInstrs] as u64,
            l1_accesses: (counters[L1ReadAccess] + counters[L1WriteAccess]) as u64,
            l1_misses: (counters[L1ReadMiss] + counters[L1WriteMiss]) as u64,
            l2_accesses: counters[L2Access] as u64,
            l2_misses: counters[L2Miss] as u64,
            dram_reads: counters[DramReads] as u64,
            dram_writes: counters[DramWrites] as u64,
            active_cycles: counters[ActiveCycles] as u64,
            total_cycles: counters[TotalCycles] as u64,
        };
        let secs = epoch_len.as_secs();
        let breakdown = power.epoch_energy(&activity, op, secs);
        counters[PowerTotalW] = breakdown.average_power(secs).watts();
        counters[PowerDynamicW] = (breakdown.dynamic() / secs).watts();
        counters[PowerLeakageW] = (breakdown.leakage / secs).watts();
        counters[PowerComputeW] = ((breakdown.compute + breakdown.overhead) / secs).watts();
        counters[PowerClockW] = (breakdown.clock / secs).watts();
        counters[PowerMemoryW] = (breakdown.memory() / secs).watts();
        counters[EnergyEpochJ] = breakdown.total().joules();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::InstrClass;
    use crate::kernel::{BasicBlock, KernelSpec, MemoryBehavior};
    use gpu_power::VfTable;

    fn kernel() -> KernelSpec {
        KernelSpec::new(
            "k",
            vec![BasicBlock::new(vec![InstrClass::IntAlu, InstrClass::LoadGlobal], 200, 0.0)],
            2,
            8,
            MemoryBehavior::streaming(1 << 20),
        )
    }

    fn cluster() -> Cluster {
        Cluster::new(0, 8, 2, MemoryConfig::titan_x(), LatencyTable::titan_x(), 5)
    }

    #[test]
    fn epoch_produces_counters_and_power() {
        let table = VfTable::titan_x();
        let power = PowerModel::titan_x();
        let mut c = cluster();
        c.assign_kernel(kernel(), (0..8).collect(), 1);
        let counters = c.step_epoch(
            Time::ZERO,
            Time::from_micros(10.0),
            table.default_index(),
            table.default_point(),
            Time::from_nanos(100.0),
            &power,
        );
        assert!(counters[CounterId::TotalInstrs] > 0.0);
        assert!(counters[CounterId::PowerTotalW] > 0.0);
        assert!(counters[CounterId::EnergyEpochJ] > 0.0);
        assert_eq!(c.cum_instructions(), counters[CounterId::TotalInstrs] as u64);
    }

    #[test]
    fn op_transition_costs_cycles() {
        let table = VfTable::titan_x();
        let power = PowerModel::titan_x();
        let run = |switch: bool| {
            let mut c = cluster();
            c.assign_kernel(kernel(), (0..8).collect(), 1);
            let idx = if switch { 0 } else { 5 };
            let counters = c.step_epoch(
                Time::ZERO,
                Time::from_micros(10.0),
                idx,
                table.point(idx),
                Time::from_micros(2.0), // exaggerated settle time
                &power,
            );
            counters[CounterId::TotalCycles]
        };
        let stay = run(false);
        let switch = run(true);
        // Switching to index 0 both lowers the clock and eats the settle
        // time, so far fewer cycles fit in the epoch.
        assert!(switch < stay * 0.7, "switch={switch}, stay={stay}");
    }

    #[test]
    fn lower_op_reduces_power() {
        let table = VfTable::titan_x();
        let power = PowerModel::titan_x();
        let watts_at = |idx: usize| {
            let mut c = cluster();
            c.assign_kernel(kernel(), (0..8).collect(), 1);
            // Let caches warm up one epoch, measure the second.
            c.step_epoch(
                Time::ZERO,
                Time::from_micros(10.0),
                idx,
                table.point(idx),
                Time::ZERO,
                &power,
            );
            let counters = c.step_epoch(
                Time::from_micros(10.0),
                Time::from_micros(10.0),
                idx,
                table.point(idx),
                Time::ZERO,
                &power,
            );
            counters[CounterId::PowerTotalW]
        };
        assert!(watts_at(0) < watts_at(5));
    }
}

#[cfg(test)]
mod multi_sm_tests {
    use super::*;
    use crate::counters::CounterId;
    use crate::isa::InstrClass;
    use crate::kernel::{BasicBlock, KernelSpec, MemoryBehavior};
    use gpu_power::{PowerModel, VfTable};

    fn kernel() -> KernelSpec {
        KernelSpec::new(
            "k",
            vec![BasicBlock::new(vec![InstrClass::IntAlu, InstrClass::LoadGlobal], 500, 0.0)],
            2,
            8,
            MemoryBehavior::streaming(1 << 20),
        )
    }

    fn run_all(mut c: Cluster) -> (u64, f64, Time) {
        let table = VfTable::titan_x();
        let power = PowerModel::titan_x();
        let mut start = Time::ZERO;
        let mut occupancy;
        for _ in 0..200 {
            let counters = c.step_epoch(
                start,
                Time::from_micros(10.0),
                table.default_index(),
                table.default_point(),
                Time::ZERO,
                &power,
            );
            occupancy = counters[CounterId::Occupancy];
            start += Time::from_micros(10.0);
            if c.is_idle() {
                return (c.cum_instructions(), occupancy, c.finish_time().expect("idle"));
            }
        }
        panic!("did not finish");
    }

    #[test]
    fn multi_sm_cluster_executes_all_work_faster() {
        let mem = crate::memory::MemoryConfig::titan_x();
        let lat = LatencyTable::titan_x();
        let one = Cluster::with_sms(0, 1, 16, 2, mem.clone(), lat.clone(), 5);
        let four = Cluster::with_sms(0, 4, 16, 2, mem, lat, 5);
        let assign = |c: &mut Cluster| c.assign_kernel(kernel(), (0..8).collect(), 1);
        let (mut c1, mut c4) = (one, four);
        assign(&mut c1);
        assign(&mut c4);
        let (instr1, _, t1) = run_all(c1);
        let (instr4, _, t4) = run_all(c4);
        assert_eq!(instr1, instr4, "total work is SM-count invariant");
        assert!(t4 < t1, "4 SMs must finish sooner: {t4} vs {t1}");
    }

    #[test]
    fn occupancy_is_averaged_not_summed() {
        let mem = crate::memory::MemoryConfig::titan_x();
        let lat = LatencyTable::titan_x();
        let mut c = Cluster::with_sms(0, 4, 16, 2, mem, lat, 5);
        c.assign_kernel(kernel(), (0..16).collect(), 1);
        let table = VfTable::titan_x();
        let power = PowerModel::titan_x();
        let counters = c.step_epoch(
            Time::ZERO,
            Time::from_micros(10.0),
            table.default_index(),
            table.default_point(),
            Time::ZERO,
            &power,
        );
        assert!(
            counters[CounterId::Occupancy] <= 1.0,
            "occupancy stays a fraction: {}",
            counters[CounterId::Occupancy]
        );
        assert!(counters[CounterId::Occupancy] > 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one SM")]
    fn zero_sms_rejected() {
        Cluster::with_sms(
            0,
            0,
            16,
            2,
            crate::memory::MemoryConfig::titan_x(),
            LatencyTable::titan_x(),
            5,
        );
    }
}
