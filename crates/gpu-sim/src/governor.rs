//! The DVFS governor interface and elementary governors.
//!
//! At the end of every epoch the simulation hands each cluster's counters to
//! the governor, which picks the operating-point index for that cluster's
//! next epoch — exactly the decision loop of Fig. 1 in the paper. SSMDVFS,
//! PCSTALL and F-LEMMA all implement [`DvfsGovernor`]; this module provides
//! the trivial governors every experiment needs.

use gpu_power::VfTable;
pub use obs::{AuditRecord, AuditTrail};

use crate::counters::EpochCounters;

/// A per-epoch, per-cluster DVFS policy.
///
/// Implementations receive the counters collected during the epoch that just
/// ended and return the index (into the [`VfTable`]) of the operating point
/// the cluster should use for the next epoch.
///
/// Governors may additionally keep a decision [`AuditTrail`]: one
/// [`AuditRecord`] per `decide()` call, capturing the decision's full
/// context for offline inspection. Auditing is opt-in via
/// [`DvfsGovernor::enable_audit`]; the default implementations make it a
/// no-op so trivial governors need not care.
pub trait DvfsGovernor {
    /// A short name for reports.
    fn name(&self) -> &str;

    /// Picks the next epoch's operating point for `cluster`.
    fn decide(&mut self, cluster: usize, counters: &EpochCounters, table: &VfTable) -> usize;

    /// Clears any internal state before a fresh run.
    fn reset(&mut self) {}

    /// Starts recording an audit trail retaining at most `capacity`
    /// decisions. Governors without audit support ignore the call.
    fn enable_audit(&mut self, capacity: usize) {
        let _ = capacity;
    }

    /// The audit trail recorded so far, if auditing is enabled and
    /// supported.
    fn audit_trail(&self) -> Option<&AuditTrail> {
        None
    }
}

/// Runs every cluster at one fixed operating point. With the default point
/// this is the paper's baseline.
///
/// # Examples
///
/// ```
/// use gpu_power::VfTable;
/// use gpu_sim::{DvfsGovernor, EpochCounters, StaticGovernor};
///
/// let table = VfTable::titan_x();
/// let mut g = StaticGovernor::default_point(&table);
/// let idx = g.decide(0, &EpochCounters::zeroed(), &table);
/// assert_eq!(idx, table.default_index());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StaticGovernor {
    index: usize,
    audit: Option<AuditTrail>,
    name: String,
}

impl StaticGovernor {
    /// Pins every cluster to `index`.
    pub fn new(index: usize) -> StaticGovernor {
        StaticGovernor { index, audit: None, name: format!("static[{index}]") }
    }

    /// Pins every cluster to the table's default point (the paper's
    /// baseline configuration).
    pub fn default_point(table: &VfTable) -> StaticGovernor {
        StaticGovernor::new(table.default_index())
    }
}

impl DvfsGovernor for StaticGovernor {
    fn name(&self) -> &str {
        &self.name
    }

    fn decide(&mut self, cluster: usize, counters: &EpochCounters, table: &VfTable) -> usize {
        let op = self.index.min(table.len() - 1);
        if let Some(trail) = self.audit.as_mut() {
            let point = table.point(op);
            trail.record(AuditRecord {
                seq: 0,
                cluster,
                features: Vec::new(),
                logits: Vec::new(),
                preset: 0.0,
                effective_preset: 0.0,
                predicted_instructions: None,
                actual_instructions: counters.total_instructions(),
                next_predicted_instructions: None,
                starved: false,
                op_index: op,
                freq_mhz: point.freq_mhz(),
                voltage_v: point.voltage_v(),
            });
        }
        op
    }

    fn reset(&mut self) {
        // In-place per-run reset: same capacity, no reallocation.
        if let Some(trail) = self.audit.as_mut() {
            trail.clear();
        }
    }

    fn enable_audit(&mut self, capacity: usize) {
        self.audit = Some(AuditTrail::new(self.name.clone(), capacity));
    }

    fn audit_trail(&self) -> Option<&AuditTrail> {
        self.audit.as_ref()
    }
}

/// Replays a fixed per-epoch schedule of operating points (identical for all
/// clusters), holding the last entry once the schedule is exhausted. The
/// data-generation methodology uses this to force the 10 µs
/// frequency-scaling window of Fig. 2.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleGovernor {
    schedule: Vec<usize>,
    /// Epoch cursor per cluster (clusters advance independently so that the
    /// governor may be queried in any cluster order).
    cursors: Vec<usize>,
}

impl ScheduleGovernor {
    /// Creates a governor replaying `schedule`.
    ///
    /// # Panics
    ///
    /// Panics if the schedule is empty.
    pub fn new(schedule: Vec<usize>) -> ScheduleGovernor {
        assert!(!schedule.is_empty(), "a schedule needs at least one entry");
        ScheduleGovernor { schedule, cursors: Vec::new() }
    }
}

impl DvfsGovernor for ScheduleGovernor {
    fn name(&self) -> &str {
        "schedule"
    }

    fn decide(&mut self, cluster: usize, _counters: &EpochCounters, table: &VfTable) -> usize {
        if cluster >= self.cursors.len() {
            self.cursors.resize(cluster + 1, 0);
        }
        let pos = self.cursors[cluster];
        self.cursors[cluster] = pos + 1;
        let idx =
            *self.schedule.get(pos).unwrap_or(self.schedule.last().expect("schedule is non-empty"));
        idx.min(table.len() - 1)
    }

    fn reset(&mut self) {
        self.cursors.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_governor_is_constant() {
        let table = VfTable::titan_x();
        let mut g = StaticGovernor::new(2);
        let c = EpochCounters::zeroed();
        for cluster in 0..4 {
            assert_eq!(g.decide(cluster, &c, &table), 2);
        }
        assert_eq!(g.name(), "static[2]");
    }

    #[test]
    fn static_governor_clamps_to_table() {
        let table = VfTable::titan_x();
        let mut g = StaticGovernor::new(99);
        assert_eq!(g.decide(0, &EpochCounters::zeroed(), &table), 5);
    }

    #[test]
    fn static_governor_audits_when_enabled() {
        let table = VfTable::titan_x();
        let mut g = StaticGovernor::new(2);
        assert!(g.audit_trail().is_none());
        g.enable_audit(4);
        g.decide(0, &EpochCounters::zeroed(), &table);
        let trail = g.audit_trail().expect("enabled trail");
        assert_eq!(trail.len(), 1);
        let rec = trail.iter().next().expect("one record");
        assert_eq!(rec.op_index, 2);
        assert!((rec.freq_mhz - table.point(2).freq_mhz()).abs() < 1e-9);
        g.reset();
        let trail = g.audit_trail().expect("survives reset");
        assert_eq!(trail.len(), 0);
        assert_eq!(trail.capacity(), 4, "in-place clear keeps capacity");
    }

    #[test]
    fn schedule_replays_then_holds() {
        let table = VfTable::titan_x();
        let mut g = ScheduleGovernor::new(vec![5, 0, 3]);
        let c = EpochCounters::zeroed();
        let seq: Vec<usize> = (0..5).map(|_| g.decide(0, &c, &table)).collect();
        assert_eq!(seq, vec![5, 0, 3, 3, 3]);
    }

    #[test]
    fn schedule_tracks_clusters_independently() {
        let table = VfTable::titan_x();
        let mut g = ScheduleGovernor::new(vec![1, 2]);
        let c = EpochCounters::zeroed();
        assert_eq!(g.decide(0, &c, &table), 1);
        assert_eq!(g.decide(1, &c, &table), 1);
        assert_eq!(g.decide(0, &c, &table), 2);
        g.reset();
        assert_eq!(g.decide(0, &c, &table), 1);
    }
}
