//! The DVFS governor interface and elementary governors.
//!
//! At the end of every epoch the simulation hands each cluster's counters to
//! the governor, which picks the operating-point index for that cluster's
//! next epoch — exactly the decision loop of Fig. 1 in the paper. SSMDVFS,
//! PCSTALL and F-LEMMA all implement [`DvfsGovernor`]; this module provides
//! the trivial governors every experiment needs.

use gpu_power::VfTable;

use crate::counters::EpochCounters;

/// A per-epoch, per-cluster DVFS policy.
///
/// Implementations receive the counters collected during the epoch that just
/// ended and return the index (into the [`VfTable`]) of the operating point
/// the cluster should use for the next epoch.
pub trait DvfsGovernor {
    /// A short name for reports.
    fn name(&self) -> &str;

    /// Picks the next epoch's operating point for `cluster`.
    fn decide(&mut self, cluster: usize, counters: &EpochCounters, table: &VfTable) -> usize;

    /// Clears any internal state before a fresh run.
    fn reset(&mut self) {}
}

/// Runs every cluster at one fixed operating point. With the default point
/// this is the paper's baseline.
///
/// # Examples
///
/// ```
/// use gpu_power::VfTable;
/// use gpu_sim::{DvfsGovernor, EpochCounters, StaticGovernor};
///
/// let table = VfTable::titan_x();
/// let mut g = StaticGovernor::default_point(&table);
/// let idx = g.decide(0, &EpochCounters::zeroed(), &table);
/// assert_eq!(idx, table.default_index());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaticGovernor {
    index: usize,
    name: String,
}

impl StaticGovernor {
    /// Pins every cluster to `index`.
    pub fn new(index: usize) -> StaticGovernor {
        StaticGovernor { index, name: format!("static[{index}]") }
    }

    /// Pins every cluster to the table's default point (the paper's
    /// baseline configuration).
    pub fn default_point(table: &VfTable) -> StaticGovernor {
        StaticGovernor::new(table.default_index())
    }
}

impl DvfsGovernor for StaticGovernor {
    fn name(&self) -> &str {
        &self.name
    }

    fn decide(&mut self, _cluster: usize, _counters: &EpochCounters, table: &VfTable) -> usize {
        self.index.min(table.len() - 1)
    }
}

/// Replays a fixed per-epoch schedule of operating points (identical for all
/// clusters), holding the last entry once the schedule is exhausted. The
/// data-generation methodology uses this to force the 10 µs
/// frequency-scaling window of Fig. 2.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleGovernor {
    schedule: Vec<usize>,
    /// Epoch cursor per cluster (clusters advance independently so that the
    /// governor may be queried in any cluster order).
    cursors: Vec<usize>,
}

impl ScheduleGovernor {
    /// Creates a governor replaying `schedule`.
    ///
    /// # Panics
    ///
    /// Panics if the schedule is empty.
    pub fn new(schedule: Vec<usize>) -> ScheduleGovernor {
        assert!(!schedule.is_empty(), "a schedule needs at least one entry");
        ScheduleGovernor { schedule, cursors: Vec::new() }
    }
}

impl DvfsGovernor for ScheduleGovernor {
    fn name(&self) -> &str {
        "schedule"
    }

    fn decide(&mut self, cluster: usize, _counters: &EpochCounters, table: &VfTable) -> usize {
        if cluster >= self.cursors.len() {
            self.cursors.resize(cluster + 1, 0);
        }
        let pos = self.cursors[cluster];
        self.cursors[cluster] = pos + 1;
        let idx =
            *self.schedule.get(pos).unwrap_or(self.schedule.last().expect("schedule is non-empty"));
        idx.min(table.len() - 1)
    }

    fn reset(&mut self) {
        self.cursors.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_governor_is_constant() {
        let table = VfTable::titan_x();
        let mut g = StaticGovernor::new(2);
        let c = EpochCounters::zeroed();
        for cluster in 0..4 {
            assert_eq!(g.decide(cluster, &c, &table), 2);
        }
        assert_eq!(g.name(), "static[2]");
    }

    #[test]
    fn static_governor_clamps_to_table() {
        let table = VfTable::titan_x();
        let mut g = StaticGovernor::new(99);
        assert_eq!(g.decide(0, &EpochCounters::zeroed(), &table), 5);
    }

    #[test]
    fn schedule_replays_then_holds() {
        let table = VfTable::titan_x();
        let mut g = ScheduleGovernor::new(vec![5, 0, 3]);
        let c = EpochCounters::zeroed();
        let seq: Vec<usize> = (0..5).map(|_| g.decide(0, &c, &table)).collect();
        assert_eq!(seq, vec![5, 0, 3, 3, 3]);
    }

    #[test]
    fn schedule_tracks_clusters_independently() {
        let table = VfTable::titan_x();
        let mut g = ScheduleGovernor::new(vec![1, 2]);
        let c = EpochCounters::zeroed();
        assert_eq!(g.decide(0, &c, &table), 1);
        assert_eq!(g.decide(1, &c, &table), 1);
        assert_eq!(g.decide(0, &c, &table), 2);
        g.reset();
        assert_eq!(g.decide(0, &c, &table), 1);
    }
}
