//! A cycle-approximate SIMT GPU timing simulator with per-cluster DVFS.
//!
//! This crate is the [GPGPU-Sim] stand-in for the SSMDVFS reproduction. It
//! models a GTX-Titan-X-class GPU as 24 independently clocked clusters (one
//! SM each), executing procedural kernel specifications with warp-level
//! scheduling, a set-associative L1/L2/DRAM hierarchy, and 10 µs DVFS
//! epochs. At the end of every epoch each cluster produces the paper's
//! 47-counter performance-counter vector, and a pluggable [`DvfsGovernor`]
//! chooses its next voltage/frequency operating point.
//!
//! The DVFS physics are faithful where it matters for the paper: core
//! frequency scales compute throughput while L2/DRAM latencies stay on the
//! fixed memory clock, so memory-bound phases are frequency-insensitive and
//! compute-bound phases scale proportionally — the signal every governor in
//! this workspace (SSMDVFS, PCSTALL, F-LEMMA) learns or models.
//!
//! # Examples
//!
//! Run a small workload at the default operating point and inspect EDP:
//!
//! ```
//! use gpu_sim::{
//!     BasicBlock, GpuConfig, InstrClass, KernelSpec, MemoryBehavior, Simulation,
//!     StaticGovernor, Time, Workload,
//! };
//!
//! let cfg = GpuConfig::small_test();
//! let kernel = KernelSpec::new(
//!     "axpy",
//!     vec![BasicBlock::new(
//!         vec![InstrClass::LoadGlobal, InstrClass::FpAlu, InstrClass::StoreGlobal],
//!         200,
//!         0.0,
//!     )],
//!     2,
//!     8,
//!     MemoryBehavior::streaming(1 << 20),
//! );
//! let mut governor = StaticGovernor::default_point(&cfg.vf_table);
//! let mut sim = Simulation::new(cfg, Workload::new("demo", vec![kernel]));
//! let result = sim.run(&mut governor, Time::from_micros(5_000.0));
//! assert!(result.completed);
//! println!("EDP = {:.3e}", result.edp_report().edp());
//! ```
//!
//! [GPGPU-Sim]: https://doi.org/10.1109/ISPASS.2009.4919648

#![warn(missing_docs)]

mod cache;
mod cluster;
mod counters;
mod fleet;
mod governor;
mod gpu;
mod isa;
mod kernel;
mod memory;
mod rng;
mod sim;
mod sm;
mod time;
mod trace;
mod warp;

pub use cache::{Cache, CacheConfig, CacheOutcome};
pub use cluster::Cluster;
pub use counters::{CounterCategory, CounterId, EpochCounters};
pub use fleet::{run_fleet, DecisionSource, FleetGpuResult};
pub use governor::{AuditRecord, AuditTrail, DvfsGovernor, ScheduleGovernor, StaticGovernor};
pub use gpu::GpuConfig;
pub use isa::{InstrClass, LatencyTable};
pub use kernel::{BasicBlock, InstrTemplate, KernelSpec, MemoryBehavior, Workload};
pub use memory::{ClusterMemory, MemAccessResult, MemLevel, MemoryConfig};
pub use rng::{mix_seed, SplitMix64};
pub use sim::{ClusterEpochRecord, EnergySummary, EpochRecord, SimResult, SimSnapshot, Simulation};
pub use sm::{EngineMode, EpochOutcome, SmCore};
pub use time::Time;
pub use trace::epoch_trace_csv;
pub use warp::{Cursor, WaitCause, Warp, WarpState};

// Re-export the power-model types that appear in this crate's public API so
// downstream users need only one import root.
pub use gpu_power::{OperatingPoint, VfTable};
