//! The epoch-stepped simulation driver.
//!
//! [`Simulation`] owns the clusters, sequences the workload's kernels,
//! advances time in DVFS epochs, and records one [`EpochRecord`] per epoch.
//! It is `Clone`, which is how the data-generation methodology implements
//! breakpoints: snapshot the simulation, replay a segment under a forced
//! frequency schedule, compare against the original timeline.

use std::sync::Arc;

use gpu_power::{EdpReport, Energy, PowerModel, VfTable};
use serde::{Deserialize, Serialize};

use crate::cluster::Cluster;
use crate::counters::{CounterId, EpochCounters};
use crate::governor::DvfsGovernor;
use crate::gpu::GpuConfig;
use crate::kernel::Workload;
use crate::sm::EngineMode;
use crate::time::Time;

/// One cluster's slice of an epoch record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterEpochRecord {
    /// The counters collected over the epoch.
    pub counters: EpochCounters,
    /// The operating-point index the cluster ran at.
    pub op_index: usize,
    /// Cumulative instructions retired by the cluster up to the epoch's end.
    pub cum_instructions: u64,
}

/// Everything that happened during one epoch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpochRecord {
    /// Epoch index (0-based).
    pub index: usize,
    /// Absolute start time.
    pub start: Time,
    /// Epoch length.
    pub len: Time,
    /// Per-cluster data, indexed by cluster id.
    pub clusters: Vec<ClusterEpochRecord>,
}

impl EpochRecord {
    /// Total energy consumed by every cluster this epoch.
    pub fn energy(&self) -> Energy {
        Energy::from_joules(self.clusters.iter().map(|c| c.counters[CounterId::EnergyEpochJ]).sum())
    }

    /// Total instructions retired by every cluster this epoch.
    pub fn instructions(&self) -> u64 {
        self.clusters.iter().map(|c| c.counters[CounterId::TotalInstrs] as u64).sum()
    }
}

/// Per-component energy totals of a run, reconstructed from the power
/// counters (core dynamic incl. clock tree, leakage, memory hierarchy).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergySummary {
    /// Core dynamic energy: instruction switching + fetch/decode overhead +
    /// clock tree.
    pub dynamic: Energy,
    /// Leakage energy.
    pub leakage: Energy,
    /// Memory-hierarchy energy (L1/L2/DRAM dynamic + DRAM background).
    pub memory: Energy,
}

impl EnergySummary {
    /// Sum of all components.
    pub fn total(&self) -> Energy {
        self.dynamic + self.leakage + self.memory
    }
}

/// Summary of one complete run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimResult {
    /// Name of the workload that ran.
    pub workload: String,
    /// Name of the governor that drove DVFS.
    pub governor: String,
    /// Whether the workload ran to completion within the time limit.
    pub completed: bool,
    /// Completion time (or the simulation horizon if incomplete).
    pub time: Time,
    /// Total energy across all clusters and epochs.
    pub energy: Energy,
    /// Component breakdown of `energy`.
    pub energy_breakdown: EnergySummary,
    /// Total instructions retired.
    pub instructions: u64,
    /// Number of epochs simulated.
    pub epochs: usize,
    /// How many per-cluster epoch decisions landed on each operating point.
    pub op_histogram: Vec<u64>,
}

impl SimResult {
    /// The run's energy/latency summary for EDP scoring.
    pub fn edp_report(&self) -> EdpReport {
        EdpReport::new(self.energy, self.time.as_secs(), self.instructions)
    }
}

/// The epoch-stepped GPU simulation.
///
/// # Examples
///
/// ```
/// use gpu_sim::{
///     BasicBlock, GpuConfig, InstrClass, KernelSpec, MemoryBehavior, Simulation,
///     StaticGovernor, Time, Workload,
/// };
///
/// let cfg = GpuConfig::small_test();
/// let kernel = KernelSpec::new(
///     "k",
///     vec![BasicBlock::new(vec![InstrClass::IntAlu], 100, 0.0)],
///     2,
///     8,
///     MemoryBehavior::streaming(1 << 16),
/// );
/// let mut governor = StaticGovernor::default_point(&cfg.vf_table);
/// let mut sim = Simulation::new(cfg, Workload::new("demo", vec![kernel]));
/// let result = sim.run(&mut governor, Time::from_micros(1_000.0));
/// assert!(result.completed);
/// assert!(result.energy.joules() > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct Simulation {
    // Immutable once constructed: shared (never deep-cloned) between the
    // simulation, its clones, and every snapshot taken from it.
    config: Arc<GpuConfig>,
    power: Arc<PowerModel>,
    workload: Arc<Workload>,
    clusters: Vec<Cluster>,
    kernel_idx: usize,
    now: Time,
    records: Vec<EpochRecord>,
    /// Global epoch index of `records[0]`; epochs before it were pruned
    /// (or predate a [`SimSnapshot`] restore).
    record_base: usize,
    /// Per-cluster cumulative instruction counts at the start of
    /// `records[0]`, anchoring [`Simulation::time_at_instructions`] when
    /// history has been pruned.
    base_cums: Vec<u64>,
    /// Maximum number of recent [`EpochRecord`]s to retain (`None` =
    /// unbounded, the default).
    history_limit: Option<usize>,
    completed_at: Option<Time>,
    // Running aggregates over *all* epochs (including pruned ones) so
    // `result()` never needs the full record history.
    agg_energy_j: f64,
    agg_breakdown: EnergySummary,
    agg_op_histogram: Vec<u64>,
    /// Number of epochs covered by the aggregates (equals `epoch_index()`
    /// unless the simulation was restored from a snapshot).
    agg_epochs: usize,
    /// The cycle-loop engine used for subsequent epochs.
    engine: EngineMode,
    /// Stall cycles the engine accounted for in bulk (never ticked
    /// individually) since construction or restore. Always zero under
    /// [`EngineMode::NaiveTick`].
    skipped_cycles: u64,
}

/// A cheap checkpoint of a [`Simulation`]'s live machine state.
///
/// Captures the clusters (SM pipelines, caches, RNG), workload position,
/// clock, and per-cluster cumulative counters — but **not** the O(elapsed
/// epochs) record history. Its size is therefore independent of how long
/// the source simulation has been running, which is what makes the
/// breakpoint-dense data-generation methodology affordable: one snapshot
/// per breakpoint, one [`SimSnapshot::restore`] per operating-point replay.
#[derive(Debug, Clone)]
pub struct SimSnapshot {
    config: Arc<GpuConfig>,
    power: Arc<PowerModel>,
    workload: Arc<Workload>,
    clusters: Vec<Cluster>,
    kernel_idx: usize,
    now: Time,
    epoch_index: usize,
    completed_at: Option<Time>,
    engine: EngineMode,
}

impl SimSnapshot {
    /// The simulation time at which the snapshot was taken.
    pub fn now(&self) -> Time {
        self.now
    }

    /// The number of epochs the source simulation had stepped.
    pub fn epoch_index(&self) -> usize {
        self.epoch_index
    }

    /// Per-cluster cumulative instruction counts at the snapshot point.
    pub fn cluster_instructions(&self, cluster: usize) -> u64 {
        self.clusters[cluster].cum_instructions()
    }

    /// Builds a live [`Simulation`] resuming from this snapshot with an
    /// empty record window and unbounded history. The restored simulation's
    /// [`Simulation::result`] covers only post-restore epochs.
    pub fn restore(&self) -> Simulation {
        self.restore_impl(None)
    }

    /// Like [`SimSnapshot::restore`], but retaining at most `limit` recent
    /// epoch records (see [`Simulation::set_history_limit`]).
    pub fn restore_with_history(&self, limit: usize) -> Simulation {
        self.restore_impl(Some(limit))
    }

    fn restore_impl(&self, history_limit: Option<usize>) -> Simulation {
        Simulation {
            config: Arc::clone(&self.config),
            power: Arc::clone(&self.power),
            workload: Arc::clone(&self.workload),
            clusters: self.clusters.clone(),
            kernel_idx: self.kernel_idx,
            now: self.now,
            records: Vec::new(),
            record_base: self.epoch_index,
            base_cums: self.clusters.iter().map(Cluster::cum_instructions).collect(),
            history_limit,
            completed_at: self.completed_at,
            agg_energy_j: 0.0,
            agg_breakdown: EnergySummary::default(),
            agg_op_histogram: vec![0; self.config.vf_table.len()],
            agg_epochs: 0,
            engine: self.engine,
            skipped_cycles: 0,
        }
    }
}

impl Simulation {
    /// Creates a simulation of `workload` on a GPU described by `config`,
    /// with the first kernel already assigned.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or a kernel's CTA shape does
    /// not fit the SM (see [`GpuConfig::validate`]).
    ///
    /// Both arguments accept either owned values or `Arc`s; passing an
    /// `Arc` lets many simulations (e.g. a datagen sweep's replays) share
    /// one decoded config/workload instead of deep-copying it per run.
    pub fn new(
        config: impl Into<Arc<GpuConfig>>,
        workload: impl Into<Arc<Workload>>,
    ) -> Simulation {
        let config: Arc<GpuConfig> = config.into();
        let workload: Arc<Workload> = workload.into();
        config.validate();
        let clusters = (0..config.num_clusters)
            .map(|id| {
                Cluster::with_sms(
                    id,
                    config.sms_per_cluster,
                    config.max_warps_per_sm,
                    config.issue_width,
                    config.memory.clone(),
                    config.latencies.clone(),
                    config.vf_table.default_index(),
                )
            })
            .collect();
        let power = Arc::new(PowerModel::new(config.power.clone()));
        let num_clusters = config.num_clusters;
        let num_ops = config.vf_table.len();
        let mut sim = Simulation {
            config,
            power,
            workload,
            clusters,
            kernel_idx: 0,
            now: Time::ZERO,
            records: Vec::new(),
            record_base: 0,
            base_cums: vec![0; num_clusters],
            history_limit: None,
            completed_at: None,
            agg_energy_j: 0.0,
            agg_breakdown: EnergySummary::default(),
            agg_op_histogram: vec![0; num_ops],
            agg_epochs: 0,
            engine: EngineMode::default(),
            skipped_cycles: 0,
        };
        sim.assign_current_kernel();
        sim
    }

    /// Selects the cycle-loop engine for subsequent epochs. Both engines
    /// produce bit-identical records and results; `NaiveTick` exists as the
    /// reference implementation for equivalence tests and benchmarks.
    pub fn set_engine(&mut self, engine: EngineMode) {
        self.engine = engine;
    }

    /// The cycle-loop engine in use.
    pub fn engine(&self) -> EngineMode {
        self.engine
    }

    /// Stall cycles accounted for in bulk (instead of being ticked one by
    /// one) since construction or snapshot restore.
    pub fn skipped_cycles(&self) -> u64 {
        self.skipped_cycles
    }

    /// Captures a checkpoint of the live machine state (clusters, caches,
    /// RNG, clock, cumulative counters) without the record history. See
    /// [`SimSnapshot`].
    pub fn snapshot(&self) -> SimSnapshot {
        SimSnapshot {
            config: Arc::clone(&self.config),
            power: Arc::clone(&self.power),
            workload: Arc::clone(&self.workload),
            clusters: self.clusters.clone(),
            kernel_idx: self.kernel_idx,
            now: self.now,
            epoch_index: self.epoch_index(),
            completed_at: self.completed_at,
            engine: self.engine,
        }
    }

    /// Caps the retained record window to the `limit` most recent epochs
    /// (`None` = unbounded). Older records are pruned as new epochs are
    /// stepped; [`Simulation::result`] still covers every epoch because the
    /// aggregates are maintained incrementally, but
    /// [`Simulation::time_at_instructions`] can only resolve targets
    /// crossed inside the retained window.
    pub fn set_history_limit(&mut self, limit: Option<usize>) {
        self.history_limit = limit;
        self.prune_history();
    }

    fn prune_history(&mut self) {
        let Some(limit) = self.history_limit else { return };
        let excess = self.records.len().saturating_sub(limit.max(1));
        if excess == 0 {
            return;
        }
        for record in self.records.drain(..excess) {
            for (cluster, c) in record.clusters.iter().enumerate() {
                self.base_cums[cluster] = c.cum_instructions;
            }
        }
        self.record_base += excess;
    }

    fn assign_current_kernel(&mut self) {
        // One shared `Arc` across every cluster (and SM): assignment no
        // longer deep-copies the kernel spec per cluster.
        let kernel = Arc::clone(&self.workload.kernels()[self.kernel_idx]);
        let num_clusters = self.clusters.len();
        let seed = self.config.seed ^ (self.kernel_idx as u64).wrapping_mul(0x9E37_79B9);
        for cluster in &mut self.clusters {
            let ids: Vec<u64> = (0..kernel.num_ctas() as u64)
                .filter(|id| (*id as usize) % num_clusters == cluster.id())
                .collect();
            cluster.assign_kernel(Arc::clone(&kernel), ids, seed);
        }
    }

    /// The GPU configuration.
    pub fn config(&self) -> &GpuConfig {
        &self.config
    }

    /// The operating-point table (shorthand for `config().vf_table`).
    pub fn vf_table(&self) -> &VfTable {
        &self.config.vf_table
    }

    /// The workload under simulation.
    pub fn workload(&self) -> &Workload {
        &self.workload
    }

    /// Current simulation time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// The retained epoch records — all of them by default, or the most
    /// recent window when a history limit is set (see
    /// [`Simulation::set_history_limit`]).
    pub fn records(&self) -> &[EpochRecord] {
        &self.records
    }

    /// Total number of epochs stepped since the simulation began,
    /// including epochs whose records were pruned or predate a snapshot
    /// restore.
    pub fn epoch_index(&self) -> usize {
        self.record_base + self.records.len()
    }

    /// The record of the epoch with global index `index`, if it is still
    /// retained.
    pub fn record_at(&self, index: usize) -> Option<&EpochRecord> {
        self.records.get(index.checked_sub(self.record_base)?)
    }

    /// Returns `true` once every kernel has completed.
    pub fn is_complete(&self) -> bool {
        self.completed_at.is_some()
    }

    /// The exact workload completion time, if complete.
    pub fn completed_at(&self) -> Option<Time> {
        self.completed_at
    }

    /// Total instructions retired so far, across clusters.
    pub fn total_instructions(&self) -> u64 {
        self.clusters.iter().map(Cluster::cum_instructions).sum()
    }

    /// Cumulative instructions retired by one cluster.
    ///
    /// # Panics
    ///
    /// Panics if `cluster` is out of range.
    pub fn cluster_instructions(&self, cluster: usize) -> u64 {
        self.clusters[cluster].cum_instructions()
    }

    /// Advances the simulation by one epoch with the given per-cluster
    /// operating-point indices, returning the new epoch's record.
    ///
    /// # Panics
    ///
    /// Panics if `ops` does not provide one index per cluster or an index is
    /// out of table range.
    pub fn step_epoch(&mut self, ops: &[usize]) -> &EpochRecord {
        assert_eq!(ops.len(), self.clusters.len(), "need one operating point per cluster");
        // Cheap `Arc` clones release the borrow on `self` for the cluster
        // loop below; the table itself is shared, not copied.
        let config = Arc::clone(&self.config);
        let power = Arc::clone(&self.power);
        let table = &config.vf_table;
        let epoch_len = config.epoch;
        let transition = config.dvfs_transition;
        let start = self.now;
        let engine = self.engine;

        let mut cluster_records = Vec::with_capacity(self.clusters.len());
        let mut epoch_skipped = 0u64;
        for (cluster, &op_index) in self.clusters.iter_mut().zip(ops) {
            let op = table
                .get(op_index)
                .unwrap_or_else(|| panic!("operating point index {op_index} out of range"));
            let (counters, skipped) =
                cluster.step_epoch_mode(engine, start, epoch_len, op_index, op, transition, &power);
            epoch_skipped += skipped;
            cluster_records.push(ClusterEpochRecord {
                counters,
                op_index,
                cum_instructions: cluster.cum_instructions(),
            });
        }
        self.now += epoch_len;
        self.agg_epochs += 1;
        self.skipped_cycles += epoch_skipped;
        obs::counter!("sim.epochs").inc(1);
        if epoch_skipped > 0 {
            obs::counter!("sim.skipped_cycles").inc(epoch_skipped);
        }
        let dt = epoch_len.as_secs();
        for c in &cluster_records {
            obs::histogram!("sim.epoch_instructions").record(c.counters.total_instructions());
            self.agg_energy_j += c.counters[CounterId::EnergyEpochJ];
            self.agg_breakdown.dynamic +=
                Energy::from_joules(c.counters[CounterId::PowerDynamicW] * dt);
            self.agg_breakdown.leakage +=
                Energy::from_joules(c.counters[CounterId::PowerLeakageW] * dt);
            self.agg_breakdown.memory +=
                Energy::from_joules(c.counters[CounterId::PowerMemoryW] * dt);
            self.agg_op_histogram[c.op_index] += 1;
        }
        self.records.push(EpochRecord {
            index: self.epoch_index(),
            start,
            len: epoch_len,
            clusters: cluster_records,
        });
        self.prune_history();

        if self.completed_at.is_none() && self.clusters.iter().all(Cluster::is_idle) {
            if self.kernel_idx + 1 < self.workload.kernels().len() {
                self.kernel_idx += 1;
                self.assign_current_kernel();
            } else {
                self.completed_at =
                    self.clusters.iter().filter_map(Cluster::finish_time).max().or(Some(self.now));
            }
        }
        self.records.last().expect("a record was just pushed")
    }

    /// Runs the workload under `governor` until completion or `max_time`,
    /// whichever comes first. The governor is reset first; the first epoch
    /// runs at the default operating point (there are no counters to decide
    /// from yet), matching the paper's inference loop.
    pub fn run(&mut self, governor: &mut dyn DvfsGovernor, max_time: Time) -> SimResult {
        let _span = obs::span!("sim", "sim.run:{}@{}", self.workload.name(), governor.name());
        let _prof = obs::prof::scope("sim.run");
        governor.reset();
        let config = Arc::clone(&self.config);
        let table = &config.vf_table;
        let default_ops = vec![table.default_index(); self.clusters.len()];
        // One reusable decision buffer for the whole run: the epoch loop is
        // the simulator's hottest path and must not allocate per epoch.
        let mut ops: Vec<usize> = Vec::with_capacity(self.clusters.len());
        while !self.is_complete() && self.now < max_time {
            ops.clear();
            match self.records.last() {
                None => ops.extend_from_slice(&default_ops),
                Some(record) => ops.extend(
                    record
                        .clusters
                        .iter()
                        .enumerate()
                        .map(|(i, c)| governor.decide(i, &c.counters, table)),
                ),
            }
            self.step_epoch(&ops);
        }
        obs::counter!("sim.runs").inc(1);
        self.result(governor.name())
    }

    /// Builds a [`SimResult`] from the current state. Aggregates are
    /// maintained incrementally as epochs are stepped, so this covers every
    /// epoch even when the record window has been pruned. On a simulation
    /// restored from a [`SimSnapshot`] it covers post-restore epochs only.
    pub fn result(&self, governor_name: &str) -> SimResult {
        SimResult {
            workload: self.workload.name().to_string(),
            governor: governor_name.to_string(),
            completed: self.is_complete(),
            time: self.completed_at.unwrap_or(self.now),
            energy: Energy::from_joules(self.agg_energy_j),
            energy_breakdown: self.agg_breakdown,
            instructions: self.total_instructions(),
            epochs: self.agg_epochs,
            op_histogram: self.agg_op_histogram.clone(),
        }
    }

    /// The absolute time at which `cluster` retired its `target`-th
    /// instruction, linearly interpolated within the epoch that crossed the
    /// threshold. Returns `None` if the cluster has not retired that many
    /// instructions yet.
    ///
    /// This is how the data-generation methodology measures per-cluster
    /// execution time to a fixed amount of work (`T_0` and `T_f` in the
    /// paper) without requiring every replay to reach a global breakpoint.
    ///
    /// Targets crossed in epochs that were pruned from the record window
    /// (or that predate a snapshot restore) also return `None`: the
    /// crossing time is no longer reconstructible. Callers that bound the
    /// history window must size it to cover every lookup they make.
    pub fn time_at_instructions(&self, cluster: usize, target: u64) -> Option<Time> {
        if target == 0 {
            return Some(Time::ZERO);
        }
        let mut prev_cum = self.base_cums[cluster];
        if target <= prev_cum {
            return None;
        }
        for record in &self.records {
            let c = &record.clusters[cluster];
            if c.cum_instructions >= target {
                let in_epoch = c.cum_instructions - prev_cum;
                let frac =
                    if in_epoch == 0 { 0.0 } else { (target - prev_cum) as f64 / in_epoch as f64 };
                let offset = Time::from_ps((record.len.as_ps() as f64 * frac) as u64);
                return Some(record.start + offset);
            }
            prev_cum = c.cum_instructions;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::governor::{ScheduleGovernor, StaticGovernor};
    use crate::isa::InstrClass;
    use crate::kernel::{BasicBlock, KernelSpec, MemoryBehavior};

    const HORIZON: Time = Time::from_ps(3_000 * 1_000_000); // 3 ms

    fn compute_workload() -> Workload {
        // Sized to span many epochs (~60 µs at the default clock) so the
        // governor's decisions — which start from the second epoch — matter.
        let kernel = KernelSpec::new(
            "compute",
            vec![BasicBlock::new(
                vec![InstrClass::IntAlu, InstrClass::FpAlu, InstrClass::IntAlu],
                3_000,
                0.0,
            )],
            2,
            16,
            MemoryBehavior::streaming(1 << 18),
        );
        Workload::new("compute", vec![kernel])
    }

    fn memory_workload() -> Workload {
        let kernel = KernelSpec::new(
            "stream",
            vec![BasicBlock::new(vec![InstrClass::LoadGlobal, InstrClass::IntAlu], 1_500, 0.0)],
            2,
            16,
            MemoryBehavior::streaming(64 << 20),
        );
        Workload::new("stream", vec![kernel])
    }

    #[test]
    fn run_completes_and_accounts_instructions() {
        let cfg = GpuConfig::small_test();
        let expected = compute_workload().total_instructions();
        let mut sim = Simulation::new(cfg.clone(), compute_workload());
        let mut gov = StaticGovernor::default_point(&cfg.vf_table);
        let result = sim.run(&mut gov, HORIZON);
        assert!(result.completed);
        assert_eq!(result.instructions, expected);
        assert!(result.energy.joules() > 0.0);
        assert!(result.time > Time::ZERO);
        assert_eq!(result.op_histogram.iter().sum::<u64>() as usize, result.epochs * 2);
    }

    #[test]
    fn multi_kernel_sequencing() {
        let cfg = GpuConfig::small_test();
        let k = compute_workload().kernels()[0].clone();
        let workload = Workload::new("two", vec![k.clone(), k]);
        let expected = workload.total_instructions();
        let mut sim = Simulation::new(cfg.clone(), workload);
        let mut gov = StaticGovernor::default_point(&cfg.vf_table);
        let result = sim.run(&mut gov, HORIZON);
        assert!(result.completed);
        assert_eq!(result.instructions, expected);
    }

    #[test]
    fn lower_frequency_slows_compute_bound_and_saves_energy() {
        let cfg = GpuConfig::small_test();
        let run = |idx: usize| {
            let mut sim = Simulation::new(cfg.clone(), compute_workload());
            let mut gov = StaticGovernor::new(idx);
            sim.run(&mut gov, HORIZON)
        };
        let fast = run(5);
        let slow = run(0);
        assert!(fast.completed && slow.completed);
        assert!(slow.time > fast.time, "compute-bound work must slow down");
        assert!(slow.energy < fast.energy, "lower V/f must save energy");
        let slowdown = slow.time.as_secs() / fast.time.as_secs();
        let freq_ratio = 1165.0 / 683.0;
        assert!(
            slowdown > 0.8 * freq_ratio,
            "compute-bound slowdown {slowdown:.2} should approach the frequency ratio {freq_ratio:.2}"
        );
    }

    #[test]
    fn memory_bound_workload_tolerates_low_frequency() {
        let cfg = GpuConfig::small_test();
        let run = |idx: usize| {
            let mut sim = Simulation::new(cfg.clone(), memory_workload());
            let mut gov = StaticGovernor::new(idx);
            sim.run(&mut gov, HORIZON)
        };
        let fast = run(5);
        let slow = run(0);
        let slowdown = slow.time.as_secs() / fast.time.as_secs();
        assert!(slowdown < 1.35, "memory-bound slowdown should be small, got {slowdown:.2}");
        // And EDP should improve: energy drops more than time grows.
        assert!(
            slow.edp_report().edp() < fast.edp_report().edp(),
            "memory-bound EDP should improve at the low point"
        );
    }

    #[test]
    fn snapshot_replay_is_deterministic() {
        let cfg = GpuConfig::small_test();
        let mut sim = Simulation::new(cfg.clone(), memory_workload());
        let ops = vec![cfg.vf_table.default_index(); cfg.num_clusters];
        sim.step_epoch(&ops);
        let snapshot = sim.clone();
        // Continue both the original and the snapshot identically.
        let mut a = sim;
        let mut b = snapshot;
        for _ in 0..3 {
            let ra = a.step_epoch(&ops).clusters[0].counters.clone();
            let rb = b.step_epoch(&ops).clusters[0].counters.clone();
            assert_eq!(ra, rb);
        }
        assert_eq!(a.total_instructions(), b.total_instructions());
    }

    #[test]
    fn snapshot_restore_matches_full_clone() {
        // A restored snapshot must step to byte-identical outcomes as a
        // full clone: same counters, same clock, same milestone timings.
        let cfg = GpuConfig::small_test();
        let mut sim = Simulation::new(cfg.clone(), memory_workload());
        let default_ops = vec![cfg.vf_table.default_index(); cfg.num_clusters];
        let low_ops = vec![0usize; cfg.num_clusters];
        for _ in 0..4 {
            sim.step_epoch(&default_ops);
        }
        let mut cloned = sim.clone();
        let mut restored = sim.snapshot().restore();
        assert_eq!(restored.epoch_index(), cloned.epoch_index());
        assert_eq!(restored.now(), cloned.now());
        for step in 0..6 {
            let ops = if step % 2 == 0 { &low_ops } else { &default_ops };
            let rc = cloned.step_epoch(ops).clone();
            let rr = restored.step_epoch(ops).clone();
            assert_eq!(rc, rr, "diverged at replay step {step}");
        }
        assert_eq!(restored.total_instructions(), cloned.total_instructions());
        let target = cloned.cluster_instructions(0);
        assert_eq!(
            restored.time_at_instructions(0, target),
            cloned.time_at_instructions(0, target),
            "milestone timing must survive the restore"
        );
    }

    #[test]
    fn snapshot_size_is_independent_of_elapsed_epochs() {
        // The snapshot captures machine state only, so its footprint must
        // not grow with simulated history — unlike a full clone, whose
        // record vector grows by one epoch record per step.
        let cfg = GpuConfig::small_test();
        let ops = vec![cfg.vf_table.default_index(); cfg.num_clusters];
        let mut sim = Simulation::new(cfg.clone(), memory_workload());
        for _ in 0..2 {
            sim.step_epoch(&ops);
        }
        let snap_early = format!("{:?}", sim.snapshot()).len();
        let clone_early = format!("{:?}", sim.clone()).len();
        for _ in 0..200 {
            sim.step_epoch(&ops);
        }
        let snap_late = format!("{:?}", sim.snapshot()).len();
        let clone_late = format!("{:?}", sim.clone()).len();
        assert!(
            clone_late as f64 > clone_early as f64 * 2.0,
            "a full clone grows with history ({clone_early} -> {clone_late})"
        );
        assert!(
            (snap_late as f64) < snap_early as f64 * 1.5,
            "a snapshot must not grow with history ({snap_early} -> {snap_late})"
        );
    }

    #[test]
    fn history_limit_prunes_but_keeps_aggregates_and_window_lookups() {
        let cfg = GpuConfig::small_test();
        let ops = vec![cfg.vf_table.default_index(); cfg.num_clusters];
        let mut full = Simulation::new(cfg.clone(), memory_workload());
        let mut windowed = Simulation::new(cfg.clone(), memory_workload());
        windowed.set_history_limit(Some(4));
        for _ in 0..12 {
            full.step_epoch(&ops);
            windowed.step_epoch(&ops);
        }
        assert_eq!(windowed.records().len(), 4, "window must stay bounded");
        assert_eq!(windowed.epoch_index(), 12, "global epoch count keeps running");
        assert_eq!(full.result("g"), windowed.result("g"), "aggregates cover pruned epochs");
        // Lookups inside the window still resolve identically.
        let target = windowed.records()[1].clusters[0].cum_instructions;
        if target > windowed.records()[0].clusters[0].cum_instructions {
            assert_eq!(
                windowed.time_at_instructions(0, target),
                full.time_at_instructions(0, target)
            );
        }
        // Lookups before the window are reported as unresolvable, and the
        // retained records carry their global indices.
        let pre_window = full.records()[2].clusters[0].cum_instructions;
        if pre_window > 0 {
            assert_eq!(windowed.time_at_instructions(0, pre_window), None);
        }
        assert_eq!(windowed.records()[0].index, 8);
        assert!(windowed.record_at(3).is_none());
        assert_eq!(windowed.record_at(8).map(|r| r.index), Some(8));
    }

    #[test]
    fn forced_schedule_changes_execution() {
        let cfg = GpuConfig::small_test();
        let mut base = Simulation::new(cfg.clone(), compute_workload());
        let mut scaled = Simulation::new(cfg.clone(), compute_workload());
        let mut hold = StaticGovernor::new(5);
        let mut dip = ScheduleGovernor::new(vec![5, 0, 0, 5]);
        let r_base = base.run(&mut hold, HORIZON);
        let r_dip = scaled.run(&mut dip, HORIZON);
        assert!(r_dip.time > r_base.time, "dipping the clock must cost time");
        assert_eq!(r_dip.instructions, r_base.instructions, "same total work");
    }

    #[test]
    fn time_at_instructions_interpolates() {
        let cfg = GpuConfig::small_test();
        let mut sim = Simulation::new(cfg.clone(), compute_workload());
        let ops = vec![cfg.vf_table.default_index(); cfg.num_clusters];
        sim.step_epoch(&ops);
        sim.step_epoch(&ops);
        let cum1 = sim.records()[0].clusters[0].cum_instructions;
        let cum2 = sim.records()[1].clusters[0].cum_instructions;
        assert!(cum1 > 0);
        // Exactly at the first epoch's total: inside epoch 0.
        let t = sim.time_at_instructions(0, cum1).unwrap();
        assert!(t <= sim.records()[0].start + sim.records()[0].len);
        // Halfway into the second epoch's work.
        let mid = cum1 + (cum2 - cum1) / 2;
        let t_mid = sim.time_at_instructions(0, mid).unwrap();
        assert!(t_mid > sim.records()[1].start);
        assert!(t_mid < sim.records()[1].start + sim.records()[1].len);
        // Beyond what has executed.
        assert_eq!(sim.time_at_instructions(0, cum2 + 1_000_000), None);
        // Zero target.
        assert_eq!(sim.time_at_instructions(0, 0), Some(Time::ZERO));
    }

    #[test]
    fn result_before_completion_reports_partial() {
        let cfg = GpuConfig::small_test();
        let mut sim = Simulation::new(cfg.clone(), compute_workload());
        let ops = vec![cfg.vf_table.default_index(); cfg.num_clusters];
        sim.step_epoch(&ops);
        let r = sim.result("probe");
        assert!(!r.completed);
        assert_eq!(r.epochs, 1);
        assert_eq!(r.time, sim.now());
    }

    #[test]
    fn history_limit_boundaries() {
        let cfg = GpuConfig::small_test();
        let ops = vec![cfg.vf_table.default_index(); cfg.num_clusters];
        let mut full = Simulation::new(cfg.clone(), memory_workload());
        for _ in 0..6 {
            full.step_epoch(&ops);
        }

        // Limit 0 is clamped to a single retained record.
        let mut zero = full.clone();
        zero.set_history_limit(Some(0));
        assert_eq!(zero.records().len(), 1);
        assert_eq!(zero.records()[0].index, 5);
        assert_eq!(zero.epoch_index(), 6);
        assert_eq!(zero.result("g"), full.result("g"));

        // Limit == len prunes nothing.
        let mut exact = full.clone();
        exact.set_history_limit(Some(6));
        assert_eq!(exact.records().len(), 6);
        assert_eq!(exact.records()[0].index, 0);

        // Limit > len prunes nothing now; stepping fills up to the cap.
        let mut over = full.clone();
        over.set_history_limit(Some(7));
        assert_eq!(over.records().len(), 6);
        over.step_epoch(&ops);
        over.step_epoch(&ops);
        assert_eq!(over.records().len(), 7);
        assert_eq!(over.records()[0].index, 1);
    }

    #[test]
    fn restore_with_history_boundaries() {
        let cfg = GpuConfig::small_test();
        let ops = vec![cfg.vf_table.default_index(); cfg.num_clusters];
        let mut sim = Simulation::new(cfg.clone(), memory_workload());
        for _ in 0..3 {
            sim.step_epoch(&ops);
        }
        let snap = sim.snapshot();
        let step4 = |mut s: Simulation| {
            for _ in 0..4 {
                s.step_epoch(&ops);
            }
            s
        };

        // Limit 0 behaves as 1: each epoch evicts the previous record.
        let r0 = step4(snap.restore_with_history(0));
        assert_eq!(r0.records().len(), 1);
        assert_eq!(r0.records()[0].index, 6, "records keep global indices");

        // Limit == post-restore epoch count retains everything...
        let r4 = step4(snap.restore_with_history(4));
        assert_eq!(r4.records().len(), 4);
        assert_eq!(r4.records()[0].index, 3, "window starts at the snapshot epoch");

        // ...as does a limit larger than what ever accumulates.
        let r9 = step4(snap.restore_with_history(9));
        assert_eq!(r9.records().len(), 4);

        // All three agree with an unbounded restore on the aggregates.
        let unlimited = step4(snap.restore());
        for r in [&r0, &r4, &r9] {
            assert_eq!(r.result("g"), unlimited.result("g"));
        }
    }

    #[test]
    fn engine_modes_are_equivalent_and_skip_reports_cycles() {
        let cfg = GpuConfig::small_test();
        let run = |mode| {
            let mut sim = Simulation::new(cfg.clone(), memory_workload());
            sim.set_engine(mode);
            let mut gov = StaticGovernor::default_point(&cfg.vf_table);
            let r = sim.run(&mut gov, HORIZON);
            assert!(r.completed);
            (r, sim.skipped_cycles())
        };
        let (naive, naive_skipped) = run(EngineMode::NaiveTick);
        let (skip, skipped) = run(EngineMode::CycleSkip);
        assert_eq!(naive, skip, "engines must agree on the full result");
        assert_eq!(naive_skipped, 0, "the reference engine never skips");
        assert!(skipped > 0, "a memory-bound run must skip stall cycles");
    }

    #[test]
    fn snapshot_preserves_engine_mode() {
        let cfg = GpuConfig::small_test();
        let mut sim = Simulation::new(cfg, memory_workload());
        sim.set_engine(EngineMode::NaiveTick);
        assert_eq!(sim.snapshot().restore().engine(), EngineMode::NaiveTick);
        assert_eq!(sim.engine(), EngineMode::NaiveTick);
    }
}

#[cfg(test)]
mod edge_case_tests {
    use super::*;
    use crate::governor::StaticGovernor;
    use crate::isa::InstrClass;
    use crate::kernel::{BasicBlock, KernelSpec, MemoryBehavior};

    const HORIZON: Time = Time::from_ps(5_000 * 1_000_000);

    #[test]
    fn kernel_with_fewer_ctas_than_clusters_completes() {
        // 1 CTA on a 2-cluster GPU: one cluster never receives work.
        let cfg = GpuConfig::small_test();
        let kernel = KernelSpec::new(
            "single",
            vec![BasicBlock::new(vec![InstrClass::IntAlu], 2_000, 0.0)],
            2,
            1,
            MemoryBehavior::streaming(4096),
        );
        let expected = kernel.total_instructions();
        let mut sim = Simulation::new(cfg.clone(), Workload::new("w", vec![kernel]));
        let mut governor = StaticGovernor::default_point(&cfg.vf_table);
        let result = sim.run(&mut governor, HORIZON);
        assert!(result.completed);
        assert_eq!(result.instructions, expected);
        assert_eq!(sim.cluster_instructions(1), 0, "cluster 1 had no CTAs");
    }

    #[test]
    fn unbalanced_kernel_sequence_completes_exactly() {
        // Alternating tiny and larger kernels exercise the epoch-aligned
        // kernel hand-over repeatedly.
        let cfg = GpuConfig::small_test();
        let tiny = KernelSpec::new(
            "tiny",
            vec![BasicBlock::new(vec![InstrClass::IntAlu], 50, 0.0)],
            2,
            3,
            MemoryBehavior::streaming(4096),
        );
        let big = KernelSpec::new(
            "big",
            vec![BasicBlock::new(vec![InstrClass::FpAlu, InstrClass::IntAlu], 800, 0.0)],
            2,
            8,
            MemoryBehavior::streaming(1 << 16),
        );
        let workload = Workload::new("seq", vec![tiny.clone(), big.clone(), tiny, big]);
        let expected = workload.total_instructions();
        let mut sim = Simulation::new(cfg.clone(), workload);
        let mut governor = StaticGovernor::default_point(&cfg.vf_table);
        let result = sim.run(&mut governor, HORIZON);
        assert!(result.completed);
        assert_eq!(result.instructions, expected);
    }

    #[test]
    fn energy_breakdown_components_sum_to_total() {
        let cfg = GpuConfig::small_test();
        let kernel = KernelSpec::new(
            "k",
            vec![BasicBlock::new(vec![InstrClass::IntAlu, InstrClass::LoadGlobal], 1_000, 0.0)],
            2,
            8,
            MemoryBehavior::streaming(8 << 20),
        );
        let mut sim = Simulation::new(cfg.clone(), Workload::new("w", vec![kernel]));
        let mut governor = StaticGovernor::default_point(&cfg.vf_table);
        let result = sim.run(&mut governor, HORIZON);
        let b = result.energy_breakdown;
        assert!(b.dynamic.joules() > 0.0);
        assert!(b.leakage.joules() > 0.0);
        assert!(b.memory.joules() > 0.0);
        let diff = (b.total().joules() - result.energy.joules()).abs();
        assert!(
            diff < result.energy.joules() * 1e-6,
            "components must sum to the total: {} vs {}",
            b.total().joules(),
            result.energy.joules()
        );
    }

    #[test]
    fn completion_time_is_before_the_last_epoch_end() {
        let cfg = GpuConfig::small_test();
        let kernel = KernelSpec::new(
            "k",
            vec![BasicBlock::new(vec![InstrClass::IntAlu], 3_000, 0.0)],
            2,
            8,
            MemoryBehavior::streaming(4096),
        );
        let mut sim = Simulation::new(cfg.clone(), Workload::new("w", vec![kernel]));
        let mut governor = StaticGovernor::default_point(&cfg.vf_table);
        let result = sim.run(&mut governor, HORIZON);
        assert!(result.completed);
        let last_epoch_end = sim.records().last().map(|r| r.start + r.len).expect("ran epochs");
        assert!(result.time <= last_epoch_end);
        assert!(result.time > Time::ZERO);
        assert_eq!(Some(result.time), sim.completed_at());
    }
}
