//! Simulation time in integer picoseconds.
//!
//! The simulator advances in fixed *epochs* (10 µs in the paper) but clusters
//! tick at their own clock frequencies inside an epoch, and memory latencies
//! live on the (fixed) memory clock. Integer picoseconds give every domain a
//! common, drift-free timebase: the fastest clock in the model (1165 MHz) has
//! an 858 ps period, so picosecond resolution is three orders of magnitude
//! finer than one cycle.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// An instant or duration on the global simulation timeline, in picoseconds.
///
/// # Examples
///
/// ```
/// use gpu_sim::Time;
///
/// let epoch = Time::from_micros(10.0);
/// assert_eq!(epoch.as_ps(), 10_000_000);
/// let t = Time::from_nanos(500.0) + Time::from_nanos(250.0);
/// assert_eq!(t.as_nanos(), 750.0);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Time(u64);

impl Time {
    /// The zero instant.
    pub const ZERO: Time = Time(0);

    /// Creates a time from picoseconds.
    pub const fn from_ps(ps: u64) -> Time {
        Time(ps)
    }

    /// Creates a time from nanoseconds (rounded to the nearest picosecond).
    ///
    /// # Panics
    ///
    /// Panics if `ns` is negative or not finite.
    pub fn from_nanos(ns: f64) -> Time {
        assert!(ns.is_finite() && ns >= 0.0, "time must be non-negative, got {ns} ns");
        Time((ns * 1e3).round() as u64)
    }

    /// Creates a time from microseconds (rounded to the nearest picosecond).
    ///
    /// # Panics
    ///
    /// Panics if `us` is negative or not finite.
    pub fn from_micros(us: f64) -> Time {
        assert!(us.is_finite() && us >= 0.0, "time must be non-negative, got {us} µs");
        Time((us * 1e6).round() as u64)
    }

    /// Creates a time from seconds (rounded to the nearest picosecond).
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    pub fn from_secs(s: f64) -> Time {
        assert!(s.is_finite() && s >= 0.0, "time must be non-negative, got {s} s");
        Time((s * 1e12).round() as u64)
    }

    /// Value in picoseconds.
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Value in nanoseconds.
    pub fn as_nanos(self) -> f64 {
        self.0 as f64 * 1e-3
    }

    /// Value in microseconds.
    pub fn as_micros(self) -> f64 {
        self.0 as f64 * 1e-6
    }

    /// Value in seconds.
    pub fn as_secs(self) -> f64 {
        self.0 as f64 * 1e-12
    }

    /// Saturating subtraction: returns zero instead of wrapping.
    pub fn saturating_sub(self, rhs: Time) -> Time {
        Time(self.0.saturating_sub(rhs.0))
    }

    /// Number of whole clock cycles of period `period_ps` that fit in this
    /// duration.
    ///
    /// # Panics
    ///
    /// Panics if `period_ps` is zero.
    pub fn cycles_at(self, period_ps: u64) -> u64 {
        assert!(period_ps > 0, "clock period must be non-zero");
        self.0 / period_ps
    }
}

impl Add for Time {
    type Output = Time;
    fn add(self, rhs: Time) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign for Time {
    fn add_assign(&mut self, rhs: Time) {
        self.0 += rhs.0;
    }
}

impl Sub for Time {
    type Output = Time;
    /// # Panics
    ///
    /// Panics in debug builds if `rhs > self` (u64 underflow).
    fn sub(self, rhs: Time) -> Time {
        Time(self.0 - rhs.0)
    }
}

impl Sum for Time {
    fn sum<I: Iterator<Item = Time>>(iter: I) -> Time {
        iter.fold(Time::ZERO, Add::add)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3} µs", self.as_micros())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3} ns", self.as_nanos())
        } else {
            write!(f, "{} ps", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_roundtrip() {
        let t = Time::from_micros(10.0);
        assert_eq!(t.as_ps(), 10_000_000);
        assert!((t.as_micros() - 10.0).abs() < 1e-12);
        assert!((t.as_secs() - 10e-6).abs() < 1e-18);
        assert_eq!(Time::from_nanos(1.5).as_ps(), 1500);
        assert_eq!(Time::from_secs(1e-6).as_ps(), 1_000_000);
    }

    #[test]
    fn arithmetic() {
        let a = Time::from_ps(100);
        let b = Time::from_ps(40);
        assert_eq!((a + b).as_ps(), 140);
        assert_eq!((a - b).as_ps(), 60);
        assert_eq!(b.saturating_sub(a), Time::ZERO);
        let total: Time = [a, b].into_iter().sum();
        assert_eq!(total.as_ps(), 140);
    }

    #[test]
    fn cycles_at_period() {
        // 1165 MHz => 858.37 ps period; a 10 µs epoch holds 11_650 cycles.
        let epoch = Time::from_micros(10.0);
        let period = (1e6 / 1165.0) as u64; // 858 ps, floor
        let cycles = epoch.cycles_at(period);
        assert!((11_600..=11_700).contains(&cycles), "got {cycles}");
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_time_rejected() {
        Time::from_nanos(-1.0);
    }

    #[test]
    fn display_units() {
        assert!(format!("{}", Time::from_micros(2.0)).contains("µs"));
        assert!(format!("{}", Time::from_nanos(2.0)).contains("ns"));
        assert!(format!("{}", Time::from_ps(2)).contains("ps"));
    }
}
