//! A set-associative cache with LRU replacement.
//!
//! Used for both the per-SM L1 data cache and the per-cluster L2 slice. The
//! cache tracks tags only — the simulator cares about hit/miss timing and
//! traffic counts, not data values.

use serde::{Deserialize, Serialize};

/// Cache geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity_bytes: u64,
    /// Line size in bytes.
    pub line_bytes: u64,
    /// Associativity (ways per set).
    pub ways: usize,
}

impl CacheConfig {
    /// Creates a cache geometry.
    ///
    /// # Panics
    ///
    /// Panics unless line size and ways are non-zero, both the line size and
    /// the set count are powers of two, and the capacity is an exact multiple
    /// of `line_bytes * ways`.
    pub fn new(capacity_bytes: u64, line_bytes: u64, ways: usize) -> CacheConfig {
        assert!(line_bytes > 0 && line_bytes.is_power_of_two(), "line size must be a power of two");
        assert!(ways > 0, "associativity must be non-zero");
        let lines = capacity_bytes / line_bytes;
        assert!(
            lines > 0 && lines.is_multiple_of(ways as u64),
            "capacity must be a multiple of line_bytes * ways"
        );
        let sets = lines / ways as u64;
        assert!(sets.is_power_of_two(), "set count must be a power of two, got {sets}");
        CacheConfig { capacity_bytes, line_bytes, ways }
    }

    /// Titan-X-class per-SM L1 data cache: 24 KiB, 128 B lines, 4-way.
    pub fn titan_x_l1() -> CacheConfig {
        CacheConfig::new(24 * 1024, 128, 6)
    }

    /// Titan-X-class per-cluster L2 slice: 128 KiB, 128 B lines, 16-way.
    pub fn titan_x_l2_slice() -> CacheConfig {
        CacheConfig::new(128 * 1024, 128, 16)
    }

    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.capacity_bytes / self.line_bytes / self.ways as u64
    }
}

/// Result of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CacheOutcome {
    /// The line was present.
    Hit,
    /// The line was absent and (for allocating accesses) has been filled,
    /// evicting a valid line if `evicted` is true.
    Miss {
        /// Whether a valid line was displaced by the fill.
        evicted: bool,
    },
}

impl CacheOutcome {
    /// Returns `true` on a hit.
    pub fn is_hit(self) -> bool {
        matches!(self, CacheOutcome::Hit)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct Line {
    tag: u64,
    valid: bool,
    /// Monotone use stamp for LRU.
    stamp: u64,
}

/// A tag-only set-associative LRU cache.
///
/// # Examples
///
/// ```
/// use gpu_sim::{Cache, CacheConfig};
///
/// let mut c = Cache::new(CacheConfig::new(1024, 64, 2));
/// assert!(!c.access(0, true).is_hit());  // cold miss, allocated
/// assert!(c.access(0, true).is_hit());   // now a hit
/// assert!(c.access(63, true).is_hit());  // same line
/// assert!(!c.access(64, true).is_hit()); // next line
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cache {
    config: CacheConfig,
    lines: Vec<Line>,
    clock: u64,
    set_mask: u64,
    line_shift: u32,
}

impl Cache {
    /// Creates an empty (all-invalid) cache.
    pub fn new(config: CacheConfig) -> Cache {
        let sets = config.sets();
        let lines = vec![Line { tag: 0, valid: false, stamp: 0 }; (sets as usize) * config.ways];
        Cache {
            config,
            lines,
            clock: 0,
            set_mask: sets - 1,
            line_shift: config.line_bytes.trailing_zeros(),
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Accesses byte address `addr`. When `allocate` is true a miss fills
    /// the line (read or write-allocate policy); when false the cache is
    /// only probed (write-through no-allocate stores).
    pub fn access(&mut self, addr: u64, allocate: bool) -> CacheOutcome {
        self.clock += 1;
        let line_addr = addr >> self.line_shift;
        let set = (line_addr & self.set_mask) as usize;
        let tag = line_addr >> self.set_mask.count_ones();
        let base = set * self.config.ways;
        let set_lines = &mut self.lines[base..base + self.config.ways];

        if let Some(line) = set_lines.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.stamp = self.clock;
            return CacheOutcome::Hit;
        }
        if !allocate {
            return CacheOutcome::Miss { evicted: false };
        }
        // Fill the invalid way if any, else evict the LRU way.
        let victim = set_lines
            .iter_mut()
            .min_by_key(|l| if l.valid { l.stamp } else { 0 })
            .expect("sets are never empty");
        let evicted = victim.valid;
        *victim = Line { tag, valid: true, stamp: self.clock };
        CacheOutcome::Miss { evicted }
    }

    /// Invalidates every line (e.g. at a kernel boundary).
    pub fn flush(&mut self) {
        for line in &mut self.lines {
            line.valid = false;
        }
    }

    /// Number of currently valid lines.
    pub fn valid_lines(&self) -> usize {
        self.lines.iter().filter(|l| l.valid).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets x 2 ways x 64 B lines = 512 B.
        Cache::new(CacheConfig::new(512, 64, 2))
    }

    #[test]
    fn hit_after_fill() {
        let mut c = tiny();
        assert!(!c.access(0x100, true).is_hit());
        assert!(c.access(0x100, true).is_hit());
        assert_eq!(c.valid_lines(), 1);
    }

    #[test]
    fn same_line_different_bytes_hit() {
        let mut c = tiny();
        c.access(0x40, true);
        assert!(c.access(0x7f, true).is_hit());
        assert!(!c.access(0x80, true).is_hit());
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Three lines mapping to set 0 in a 2-way set: 0x000, 0x100, 0x200.
        c.access(0x000, true);
        c.access(0x100, true);
        // Touch 0x000 so 0x100 is the LRU.
        assert!(c.access(0x000, true).is_hit());
        let out = c.access(0x200, true);
        assert_eq!(out, CacheOutcome::Miss { evicted: true });
        assert!(c.access(0x000, true).is_hit(), "recently used line survived");
        assert!(!c.access(0x100, true).is_hit(), "LRU line was evicted");
    }

    #[test]
    fn no_allocate_probe_leaves_cache_unchanged() {
        let mut c = tiny();
        assert!(!c.access(0x300, false).is_hit());
        assert_eq!(c.valid_lines(), 0);
        assert!(!c.access(0x300, true).is_hit());
        assert!(c.access(0x300, false).is_hit());
    }

    #[test]
    fn flush_invalidates_everything() {
        let mut c = tiny();
        for i in 0..8 {
            c.access(i * 64, true);
        }
        assert!(c.valid_lines() > 0);
        c.flush();
        assert_eq!(c.valid_lines(), 0);
        assert!(!c.access(0, true).is_hit());
    }

    #[test]
    fn titan_presets_are_valid() {
        let l1 = CacheConfig::titan_x_l1();
        assert_eq!(l1.capacity_bytes, 24 * 1024);
        assert_eq!(l1.sets(), 32);
        let l2 = CacheConfig::titan_x_l2_slice();
        assert_eq!(l2.sets(), 64);
        // Constructible.
        let _ = Cache::new(l1);
        let _ = Cache::new(l2);
    }

    #[test]
    fn cold_capacity_fill_counts() {
        let mut c = tiny();
        // Fill the entire cache: 8 distinct lines, no evictions.
        for i in 0..8u64 {
            let out = c.access(i * 64, true);
            assert_eq!(out, CacheOutcome::Miss { evicted: false });
        }
        assert_eq!(c.valid_lines(), 8);
        // One more distinct line must evict.
        assert_eq!(c.access(8 * 64, true), CacheOutcome::Miss { evicted: true });
    }
}
