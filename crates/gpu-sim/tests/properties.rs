//! Property-based tests for the simulator's core data structures.

use gpu_sim::{
    BasicBlock, Cache, CacheConfig, CounterId, EpochCounters, InstrClass, KernelSpec,
    MemoryBehavior, SplitMix64, Time, Warp,
};
use proptest::prelude::*;

proptest! {
    /// A line just accessed with allocation is always resident.
    #[test]
    fn cache_access_then_hit(addrs in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut cache = Cache::new(CacheConfig::new(4096, 64, 4));
        for addr in addrs {
            cache.access(addr, true);
            prop_assert!(cache.access(addr, true).is_hit(), "line {addr:#x} must be resident");
        }
    }

    /// Valid line count never exceeds capacity, and probes never allocate.
    #[test]
    fn cache_capacity_invariants(addrs in prop::collection::vec(0u64..10_000_000, 1..300)) {
        let config = CacheConfig::new(2048, 64, 2);
        let capacity_lines = (config.capacity_bytes / config.line_bytes) as usize;
        let mut cache = Cache::new(config);
        for (i, addr) in addrs.iter().enumerate() {
            cache.access(*addr, i % 3 != 2);
            prop_assert!(cache.valid_lines() <= capacity_lines);
        }
        let before = cache.valid_lines();
        cache.access(0xDEAD_0000, false);
        prop_assert!(cache.valid_lines() <= before, "a probe must not allocate");
    }

    /// Time conversions round-trip within a picosecond.
    #[test]
    fn time_roundtrips(ps in 0u64..10_000_000_000_000) {
        let t = Time::from_ps(ps);
        let roundtrip = Time::from_secs(t.as_secs()).as_ps() as i128;
        prop_assert!((roundtrip - ps as i128).abs() <= 1);
        prop_assert!((t.as_nanos() - ps as f64 / 1e3).abs() < 1e-3);
    }

    /// Time ordering is preserved by addition.
    #[test]
    fn time_addition_monotone(a in 0u64..1_000_000_000, b in 1u64..1_000_000_000) {
        let t = Time::from_ps(a);
        prop_assert!(t + Time::from_ps(b) > t);
        prop_assert_eq!((t + Time::from_ps(b)) - Time::from_ps(b), t);
        prop_assert_eq!(Time::ZERO.saturating_sub(t), Time::ZERO);
    }

    /// SplitMix64 bounded sampling respects its bound for any seed.
    #[test]
    fn rng_bounds(seed in any::<u64>(), bound in 1u64..1_000_000) {
        let mut rng = SplitMix64::new(seed);
        for _ in 0..100 {
            prop_assert!(rng.next_below(bound) < bound);
            let f = rng.next_f32();
            prop_assert!((0.0..1.0).contains(&f));
        }
    }

    /// A warp walks exactly `instructions_per_warp` instructions for any
    /// program shape.
    #[test]
    fn cursor_walks_every_instruction(
        block_lens in prop::collection::vec(1usize..6, 1..4),
        iters in prop::collection::vec(1u32..5, 1..4),
    ) {
        let n = block_lens.len().min(iters.len());
        let blocks: Vec<BasicBlock> = (0..n)
            .map(|i| {
                BasicBlock::new(
                    std::iter::repeat_n(InstrClass::IntAlu, block_lens[i]),
                    iters[i],
                    0.0,
                )
            })
            .collect();
        let kernel = KernelSpec::new("p", blocks, 1, 1, MemoryBehavior::streaming(4096));
        let mut warp = Warp::new(0, 0, 1, 0);
        let mut executed = 0u64;
        loop {
            executed += 1;
            if !warp.advance_cursor(&kernel) {
                break;
            }
        }
        prop_assert_eq!(executed, kernel.instructions_per_warp());
    }

    /// Warp addresses always stay inside the working set.
    #[test]
    fn addresses_in_working_set(
        seed in any::<u64>(),
        ws_kb in 1u64..1024,
        random_frac in 0.0f32..0.5,
        hot_frac in 0.0f32..0.5,
    ) {
        let mem = MemoryBehavior::new(ws_kb * 1024, 128, random_frac, hot_frac);
        let mut warp = Warp::new(0, seed % 64, seed, 0);
        for _ in 0..200 {
            prop_assert!(warp.next_address(&mem) < ws_kb * 1024);
        }
    }

    /// Counter merging is additive for count-like counters.
    #[test]
    fn counters_merge_additively(
        a in prop::collection::vec(0.0f64..10_000.0, 47),
        b in prop::collection::vec(0.0f64..10_000.0, 47),
    ) {
        let mut ca = EpochCounters::zeroed();
        let mut cb = EpochCounters::zeroed();
        for (i, id) in CounterId::ALL.into_iter().enumerate() {
            ca[id] = a[i];
            cb[id] = b[i];
        }
        let (ta, tb) = (ca[CounterId::TotalInstrs], cb[CounterId::TotalInstrs]);
        ca.merge(&cb);
        prop_assert!((ca[CounterId::TotalInstrs] - (ta + tb)).abs() < 1e-9);
        // Derived ratios stay in range after a merge.
        prop_assert!(ca[CounterId::L1ReadMissRate] >= 0.0);
    }
}
