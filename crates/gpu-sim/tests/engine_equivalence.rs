//! Property tests pinning the cycle-skip engine to the naive-tick
//! reference: on random workloads and random per-epoch operating points,
//! both engines must produce byte-identical serialized `EpochRecord`
//! streams and `SimResult`s, and a snapshot restored mid-run must replay
//! byte-identically under either engine.

use gpu_sim::{
    BasicBlock, EngineMode, GpuConfig, InstrClass, KernelSpec, MemoryBehavior, Simulation, Workload,
};
use proptest::prelude::*;

/// A small random kernel: a handful of blocks mixing ALU, memory and
/// barrier work so runs exercise stalls (the skip path) and compute
/// stretches (the tick path).
fn arb_kernel() -> impl Strategy<Value = KernelSpec> {
    (
        prop::collection::vec((prop::collection::vec(0u8..6, 1..5), 1u32..4, 0.0f32..0.3), 1..3),
        1usize..3,
        1usize..5,
        (2u64..33, 0.0f32..0.5, 0.0f32..0.5),
    )
        .prop_map(|(blocks, warps_per_cta, num_ctas, (ws_kb, random_frac, hot_frac))| {
            let classes = [
                InstrClass::IntAlu,
                InstrClass::FpAlu,
                InstrClass::LoadGlobal,
                InstrClass::StoreGlobal,
                InstrClass::Sfu,
                InstrClass::Branch,
            ];
            let blocks: Vec<BasicBlock> = blocks
                .into_iter()
                .map(|(instrs, iters, div)| {
                    BasicBlock::new(instrs.into_iter().map(|i| classes[i as usize]), iters, div)
                })
                .collect();
            KernelSpec::new(
                "prop",
                blocks,
                warps_per_cta,
                num_ctas,
                MemoryBehavior::new(ws_kb * 1024, 128, random_frac, hot_frac),
            )
        })
}

/// Steps `sim` through `ops_schedule` (one operating point per epoch, for
/// every cluster) and serializes each epoch's record plus the final
/// result, so comparisons are byte-level.
fn drive(mut sim: Simulation, ops_schedule: &[u8]) -> (Vec<String>, String, u64) {
    let table_len = 6;
    let mut records = Vec::new();
    for &op in ops_schedule {
        if sim.is_complete() {
            break;
        }
        let ops = vec![op as usize % table_len; sim.config().num_clusters];
        let record = sim.step_epoch(&ops);
        records.push(serde_json::to_string(record).expect("record serializes"));
    }
    let result = serde_json::to_string(&sim.result("prop")).expect("result serializes");
    (records, result, sim.skipped_cycles())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Cycle skipping is an exact optimization: the entire observable
    /// output (per-epoch records, final result) is byte-identical to
    /// ticking every cycle, for any workload and DVFS schedule.
    #[test]
    fn cycle_skip_matches_naive_tick(
        kernel in arb_kernel(),
        ops_schedule in prop::collection::vec(any::<u8>(), 4..40),
    ) {
        let cfg = GpuConfig::small_test();
        let workload = Workload::new("prop", vec![kernel]);
        let run = |mode: EngineMode| {
            let mut sim = Simulation::new(cfg.clone(), workload.clone());
            sim.set_engine(mode);
            drive(sim, &ops_schedule)
        };
        let (naive_records, naive_result, naive_skipped) = run(EngineMode::NaiveTick);
        let (skip_records, skip_result, _) = run(EngineMode::CycleSkip);
        prop_assert_eq!(naive_skipped, 0, "the reference engine never skips");
        prop_assert_eq!(naive_records, skip_records, "per-epoch records must match");
        prop_assert_eq!(naive_result, skip_result, "final results must match");
    }

    /// snapshot() -> restore() -> step: the restored simulation replays
    /// byte-identically to the original continuing, under both engines.
    #[test]
    fn snapshot_restore_replays_byte_identically(
        kernel in arb_kernel(),
        warmup_schedule in prop::collection::vec(any::<u8>(), 1..6),
        ops_schedule in prop::collection::vec(any::<u8>(), 4..20),
        naive in any::<bool>(),
    ) {
        let cfg = GpuConfig::small_test();
        let workload = Workload::new("prop", vec![kernel]);
        let mut sim = Simulation::new(cfg.clone(), workload);
        sim.set_engine(if naive { EngineMode::NaiveTick } else { EngineMode::CycleSkip });
        for &op in &warmup_schedule {
            if sim.is_complete() {
                break;
            }
            let ops = vec![op as usize % 6; cfg.num_clusters];
            sim.step_epoch(&ops);
        }
        let restored = sim.snapshot().restore();
        prop_assert_eq!(restored.engine(), sim.engine(), "restore keeps the engine mode");
        let (orig_records, _, _) = drive(sim, &ops_schedule);
        let (replay_records, _, _) = drive(restored, &ops_schedule);
        prop_assert_eq!(orig_records, replay_records, "replay must be byte-identical");
    }
}
