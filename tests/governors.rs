//! Cross-crate integration: qualitative ordering of the baseline governors.

use dvfs_baselines::{run_oracle, FlemmaConfig, FlemmaGovernor, PcstallConfig, PcstallGovernor};
use gpu_sim::{DvfsGovernor, GpuConfig, SimResult, Simulation, StaticGovernor, Time};
use gpu_workloads::by_name;

const HORIZON: Time = Time::from_ps(20_000 * 1_000_000);

fn run(
    cfg: &GpuConfig,
    bench: &gpu_workloads::Benchmark,
    governor: &mut dyn DvfsGovernor,
) -> SimResult {
    let mut sim = Simulation::new(cfg.clone(), bench.workload().clone());
    let result = sim.run(governor, HORIZON);
    assert!(result.completed, "{} must finish under {}", bench.name(), governor.name());
    result
}

#[test]
fn pcstall_beats_the_baseline_on_memory_bound_work_within_preset() {
    let cfg = GpuConfig::small_test();
    let bench = by_name("lbm").expect("lbm exists").scaled(0.1);
    let base = run(&cfg, &bench, &mut StaticGovernor::default_point(&cfg.vf_table));
    let pcstall = run(&cfg, &bench, &mut PcstallGovernor::new(PcstallConfig::new(0.10)));
    let base_report = base.edp_report();
    let report = pcstall.edp_report();
    assert!(
        report.normalized_edp(&base_report) < 0.95,
        "PCSTALL should exploit memory-boundedness, got {:.4}",
        report.normalized_edp(&base_report)
    );
    assert!(report.performance_loss(&base_report) < 0.12);
}

#[test]
fn pcstall_keeps_compute_bound_work_near_the_default() {
    let cfg = GpuConfig::small_test();
    let bench = by_name("gemm").expect("gemm exists").scaled(0.1);
    let base = run(&cfg, &bench, &mut StaticGovernor::default_point(&cfg.vf_table));
    let pcstall = run(&cfg, &bench, &mut PcstallGovernor::new(PcstallConfig::new(0.10)));
    let loss = pcstall.edp_report().performance_loss(&base.edp_report());
    assert!(loss < 0.13, "compute-bound loss {loss:.3} must stay near the preset");
}

#[test]
fn flemma_trails_the_analytical_method_on_short_programs() {
    // The paper's central claim about RL: on ~300 µs programs the
    // exploration warm-up costs more than the learned policy recovers.
    let cfg = GpuConfig::small_test();
    let mut flemma_edp = 0.0;
    let mut pcstall_edp = 0.0;
    for name in ["lbm", "spmv", "mvt"] {
        let bench = by_name(name).expect("benchmark exists").scaled(0.1);
        let base =
            run(&cfg, &bench, &mut StaticGovernor::default_point(&cfg.vf_table)).edp_report();
        let f = run(&cfg, &bench, &mut FlemmaGovernor::new(FlemmaConfig::new(0.10)));
        let p = run(&cfg, &bench, &mut PcstallGovernor::new(PcstallConfig::new(0.10)));
        flemma_edp += f.edp_report().normalized_edp(&base);
        pcstall_edp += p.edp_report().normalized_edp(&base);
    }
    assert!(
        flemma_edp > pcstall_edp,
        "RL warm-up should cost EDP on short programs: flemma {flemma_edp:.3} vs pcstall {pcstall_edp:.3}"
    );
}

#[test]
fn oracle_is_an_edp_lower_bound_among_preset_respecting_governors() {
    let cfg = GpuConfig::small_test();
    let bench = by_name("spmv").expect("spmv exists").scaled(0.1);
    let base = run(&cfg, &bench, &mut StaticGovernor::default_point(&cfg.vf_table));
    let base_report = base.edp_report();
    let oracle = run_oracle(&cfg, bench.workload().clone(), 0.10, HORIZON);
    let pcstall = run(&cfg, &bench, &mut PcstallGovernor::new(PcstallConfig::new(0.10)));
    let oracle_edp = oracle.edp_report().normalized_edp(&base_report);
    let pcstall_edp = pcstall.edp_report().normalized_edp(&base_report);
    assert!(
        oracle_edp <= pcstall_edp * 1.03,
        "the one-step oracle should not lose to PCSTALL: {oracle_edp:.4} vs {pcstall_edp:.4}"
    );
}

#[test]
fn all_governors_conserve_total_work() {
    let cfg = GpuConfig::small_test();
    let bench = by_name("histo").expect("histo exists").scaled(0.1);
    let expected = bench.workload().total_instructions();
    let runs = [
        run(&cfg, &bench, &mut StaticGovernor::default_point(&cfg.vf_table)),
        run(&cfg, &bench, &mut StaticGovernor::new(0)),
        run(&cfg, &bench, &mut PcstallGovernor::new(PcstallConfig::new(0.10))),
        run(&cfg, &bench, &mut FlemmaGovernor::new(FlemmaConfig::new(0.10))),
    ];
    for r in &runs {
        assert_eq!(r.instructions, expected, "{} executed a different amount of work", r.governor);
    }
}
