//! Cross-crate integration: the benchmark suite's advertised characters
//! must match its measured frequency sensitivity — this is the ground truth
//! every governor in the workspace learns from or models.

use gpu_sim::{GpuConfig, Simulation, StaticGovernor, Time};
use gpu_workloads::{by_name, Boundedness};

const HORIZON: Time = Time::from_ps(30_000 * 1_000_000);

/// End-to-end slowdown of running a benchmark entirely at the 683 MHz floor
/// versus the 1165 MHz default (first epoch always runs at the default, so
/// the measured ratio slightly understates the pure-frequency ratio).
fn floor_slowdown(name: &str) -> f64 {
    let cfg = GpuConfig::small_test();
    let bench = by_name(name).unwrap_or_else(|| panic!("unknown benchmark {name}")).scaled(0.08);
    let run = |idx: usize| {
        let mut sim = Simulation::new(cfg.clone(), bench.workload().clone());
        let mut governor = StaticGovernor::new(idx);
        let r = sim.run(&mut governor, HORIZON);
        assert!(r.completed, "{name} must complete");
        r.time.as_secs()
    };
    run(0) / run(cfg.vf_table.default_index())
}

#[test]
fn compute_bound_benchmarks_are_frequency_sensitive() {
    for name in ["gemm", "lavamd", "mriq"] {
        let slowdown = floor_slowdown(name);
        assert!(
            slowdown > 1.35,
            "{name} advertises compute-bound but slows only {slowdown:.2}x at the floor"
        );
    }
}

#[test]
fn memory_bound_benchmarks_are_frequency_tolerant() {
    for name in ["lbm", "mvt", "pathfinder"] {
        let slowdown = floor_slowdown(name);
        assert!(
            slowdown < 1.30,
            "{name} advertises memory-bound but slows {slowdown:.2}x at the floor"
        );
    }
}

#[test]
fn mixed_benchmarks_sit_between_the_extremes() {
    for name in ["hotspot", "stencil", "sad"] {
        let slowdown = floor_slowdown(name);
        assert!(
            (1.10..1.65).contains(&slowdown),
            "{name} advertises mixed behaviour but measured {slowdown:.2}x"
        );
    }
}

#[test]
fn every_character_class_is_represented_and_ordered() {
    // One representative per class, measured on identical infrastructure:
    // compute > mixed > memory in frequency sensitivity.
    let compute = floor_slowdown("gemm");
    let mixed = floor_slowdown("stencil");
    let memory = floor_slowdown("lbm");
    assert!(
        compute > mixed && mixed > memory,
        "sensitivity ordering violated: compute {compute:.2} / mixed {mixed:.2} / memory {memory:.2}"
    );
    let _ = Boundedness::Irregular; // the fourth class is covered above via suite tests
}
