//! Cross-crate integration: determinism and accounting invariants.

use gpu_sim::{CounterId, GpuConfig, Simulation, StaticGovernor, Time};
use gpu_workloads::by_name;

const HORIZON: Time = Time::from_ps(20_000 * 1_000_000);

#[test]
fn identical_seeds_produce_identical_runs() {
    let cfg = GpuConfig::small_test();
    let bench = by_name("stencil").expect("stencil exists").scaled(0.08);
    let run = || {
        let mut sim = Simulation::new(cfg.clone(), bench.workload().clone());
        let mut governor = StaticGovernor::default_point(&cfg.vf_table);
        sim.run(&mut governor, HORIZON)
    };
    let a = run();
    let b = run();
    assert_eq!(a.time, b.time);
    assert_eq!(a.instructions, b.instructions);
    assert_eq!(a.energy, b.energy);
    assert_eq!(a.epochs, b.epochs);
}

#[test]
fn different_seeds_change_timing_but_not_total_work() {
    let cfg = GpuConfig::small_test();
    let bench = by_name("spmv").expect("spmv exists").scaled(0.08);
    let run = |seed: u64| {
        let mut sim = Simulation::new(cfg.clone().with_seed(seed), bench.workload().clone());
        let mut governor = StaticGovernor::default_point(&cfg.vf_table);
        sim.run(&mut governor, HORIZON)
    };
    let a = run(1);
    let b = run(2);
    assert_eq!(a.instructions, b.instructions, "instruction totals are seed-invariant");
    // spmv's random access streams differ per seed, so timing differs.
    assert_ne!(a.time, b.time, "irregular access timing should vary with the seed");
}

#[test]
fn per_epoch_counters_are_consistent() {
    let cfg = GpuConfig::small_test();
    let bench = by_name("backprop").expect("backprop exists").scaled(0.08);
    let mut sim = Simulation::new(cfg.clone(), bench.workload().clone());
    let mut governor = StaticGovernor::default_point(&cfg.vf_table);
    let result = sim.run(&mut governor, HORIZON);
    assert!(result.completed);

    let mut total_from_epochs = 0u64;
    for record in sim.records() {
        for c in &record.clusters {
            let counters = &c.counters;
            // Class counters sum to the total.
            let class_sum = counters[CounterId::IntAluInstrs]
                + counters[CounterId::FpAluInstrs]
                + counters[CounterId::SfuInstrs]
                + counters[CounterId::LoadGlobalInstrs]
                + counters[CounterId::LoadSharedInstrs]
                + counters[CounterId::StoreGlobalInstrs]
                + counters[CounterId::StoreSharedInstrs]
                + counters[CounterId::BranchInstrs]
                + counters[CounterId::BarrierInstrs];
            assert_eq!(class_sum, counters[CounterId::TotalInstrs]);
            // Stall + issued cycles never exceed total cycles.
            assert!(
                counters[CounterId::IssuedCycles] + counters[CounterId::StallTotal]
                    <= counters[CounterId::TotalCycles] + 0.5
            );
            // Cache hits/misses are consistent.
            assert!(counters[CounterId::L1ReadMiss] <= counters[CounterId::L1ReadAccess]);
            assert!(counters[CounterId::L2Miss] <= counters[CounterId::L2Access]);
            // Energy is positive whenever cycles elapsed.
            if counters[CounterId::TotalCycles] > 0.0 {
                assert!(counters[CounterId::EnergyEpochJ] > 0.0);
                assert!(counters[CounterId::PowerTotalW] > 0.0);
            }
            total_from_epochs += counters[CounterId::TotalInstrs] as u64;
        }
    }
    assert_eq!(total_from_epochs, result.instructions);
    assert_eq!(result.instructions, bench.workload().total_instructions());
}

#[test]
fn snapshot_replay_reproduces_the_original_timeline() {
    let cfg = GpuConfig::small_test();
    let bench = by_name("srad").expect("srad exists").scaled(0.08);
    let mut sim = Simulation::new(cfg.clone(), bench.workload().clone());
    let default_ops = vec![cfg.vf_table.default_index(); cfg.num_clusters];
    sim.step_epoch(&default_ops);
    sim.step_epoch(&default_ops);
    let snapshot = sim.clone();
    let a = sim.step_epoch(&default_ops).clone();
    let mut replay = snapshot;
    let b = replay.step_epoch(&default_ops).clone();
    assert_eq!(a, b, "a snapshot must continue exactly like the original");
}
