//! Cross-crate integration: the full SSMDVFS pipeline on a scaled-down
//! configuration — data generation, training, compression, runtime control
//! on held-out work — must reproduce the paper's qualitative claims.

use gpu_sim::{GpuConfig, Simulation, StaticGovernor, Time};
use gpu_workloads::by_name;
use ssmdvfs::{
    compress_and_finetune, estimate_asic, generate, train_combined, AsicConfig, DataGenConfig,
    DvfsDataset, FeatureSet, ModelArch, SsmdvfsConfig, SsmdvfsGovernor,
};
use tinynn::TrainConfig;

const HORIZON: Time = Time::from_ps(20_000 * 1_000_000);

fn pipeline() -> (GpuConfig, ssmdvfs::CombinedModel, DvfsDataset) {
    let cfg = GpuConfig::small_test();
    let mut dataset = DvfsDataset::default();
    for name in ["sgemm", "lbm", "hotspot"] {
        let bench = by_name(name).expect("training benchmark exists").scaled(0.08);
        dataset.extend(generate(&bench, &cfg, &DataGenConfig::default()));
    }
    assert!(dataset.len() > 50, "datagen must produce a useful corpus");
    let (model, summary) = train_combined(
        &dataset,
        &FeatureSet::refined(),
        &ModelArch::paper_full(),
        cfg.vf_table.len(),
        &TrainConfig { epochs: 80, ..TrainConfig::default() },
        0.25,
    );
    assert!(
        summary.decision_accuracy > 0.4,
        "decision accuracy {:.2} implausibly low",
        summary.decision_accuracy
    );
    assert!(
        summary.calibrator_mape < 50.0,
        "calibrator MAPE {:.1}% implausibly high",
        summary.calibrator_mape
    );
    (cfg, model, dataset)
}

#[test]
fn ssmdvfs_improves_edp_on_held_out_memory_bound_work() {
    let (cfg, model, _) = pipeline();
    // mvt was not in the training set.
    let bench = by_name("mvt").expect("mvt exists").scaled(0.1);

    let mut base_sim = Simulation::new(cfg.clone(), bench.workload().clone());
    let mut base_gov = StaticGovernor::default_point(&cfg.vf_table);
    let base = base_sim.run(&mut base_gov, HORIZON);
    assert!(base.completed);

    let mut sim = Simulation::new(cfg.clone(), bench.workload().clone());
    let mut governor = SsmdvfsGovernor::new(model, SsmdvfsConfig::new(0.10));
    let tuned = sim.run(&mut governor, HORIZON);
    assert!(tuned.completed);

    let base_report = base.edp_report();
    let report = tuned.edp_report();
    assert!(
        report.normalized_edp(&base_report) < 0.95,
        "SSMDVFS should clearly beat the static default on memory-bound work, got {:.4}",
        report.normalized_edp(&base_report)
    );
    assert!(
        report.performance_loss(&base_report) < 0.13,
        "performance loss {:.3} far exceeds the 10% preset",
        report.performance_loss(&base_report)
    );
}

#[test]
fn compression_preserves_control_quality() {
    let (cfg, model, dataset) = pipeline();
    let compressed = compress_and_finetune(
        &model,
        &dataset,
        0.6,
        0.9,
        &TrainConfig { epochs: 40, ..TrainConfig::default() },
    );
    assert!(
        compressed.sparse_flops() * 2 < model.flops(),
        "two-stage pruning should at least halve FLOPs"
    );

    let bench = by_name("lbm").expect("lbm exists").scaled(0.1);
    let mut base_sim = Simulation::new(cfg.clone(), bench.workload().clone());
    let mut base_gov = StaticGovernor::default_point(&cfg.vf_table);
    let base = base_sim.run(&mut base_gov, HORIZON).edp_report();

    let mut sim = Simulation::new(cfg.clone(), bench.workload().clone());
    let mut governor = SsmdvfsGovernor::new(compressed, SsmdvfsConfig::new(0.10));
    let report = sim.run(&mut governor, HORIZON).edp_report();
    assert!(
        report.normalized_edp(&base) < 0.95,
        "the compressed model should still save EDP, got {:.4}",
        report.normalized_edp(&base)
    );
    assert!(report.performance_loss(&base) < 0.13);
}

#[test]
fn asic_estimate_is_negligible_against_the_epoch_and_tdp() {
    // Follow the paper's full compression pipeline: layer-wise compression
    // (retrain at the 12-neuron architecture) before the two-stage pruning.
    let (cfg, _, dataset) = pipeline();
    let (small, _) = train_combined(
        &dataset,
        &FeatureSet::refined(),
        &ModelArch::paper_compressed(),
        cfg.vf_table.len(),
        &TrainConfig { epochs: 60, ..TrainConfig::default() },
        0.25,
    );
    let compressed = compress_and_finetune(
        &small,
        &dataset,
        0.6,
        0.9,
        &TrainConfig { epochs: 20, ..TrainConfig::default() },
    );
    let report = estimate_asic(
        &compressed,
        &AsicConfig::tsmc65(),
        cfg.vf_table.default_point().freq_mhz(),
        cfg.epoch.as_micros(),
    );
    assert!(
        report.epoch_fraction < 0.10,
        "inference must fit comfortably in a 10 µs epoch, got {:.3}",
        report.epoch_fraction
    );
    assert!(report.area_28nm_mm2 < 0.1, "area {:.4} mm² implausible", report.area_28nm_mm2);
    assert!(
        report.power_w < 0.01,
        "power {:.4} W should be negligible vs a 250 W TDP",
        report.power_w
    );
}
