//! Failure-injection tests: the system's behaviour under hostile or
//! degenerate inputs must be the *documented* behaviour — a clear panic for
//! contract violations, graceful handling for recoverable weirdness.

use gpu_power::VfTable;
use gpu_sim::{
    BasicBlock, CounterId, DvfsGovernor, EpochCounters, GpuConfig, InstrClass, KernelSpec,
    MemoryBehavior, Simulation, StaticGovernor, Time, Workload,
};
use gpu_workloads::by_name;

fn tiny_workload() -> Workload {
    // Long enough to span several epochs, so the governor is actually
    // consulted (the first epoch always runs at the default point).
    let k = KernelSpec::new(
        "k",
        vec![BasicBlock::new(vec![InstrClass::IntAlu], 5_000, 0.0)],
        2,
        16,
        MemoryBehavior::streaming(1 << 16),
    );
    Workload::new("tiny", vec![k])
}

/// A governor that returns garbage indices: the simulation must reject them
/// loudly rather than corrupting the run.
struct RogueGovernor;

impl DvfsGovernor for RogueGovernor {
    fn name(&self) -> &str {
        "rogue"
    }
    fn decide(&mut self, _: usize, _: &EpochCounters, table: &VfTable) -> usize {
        table.len() + 10
    }
}

#[test]
#[should_panic(expected = "out of range")]
fn out_of_range_op_from_a_governor_panics() {
    let cfg = GpuConfig::small_test();
    let mut sim = Simulation::new(cfg, tiny_workload());
    let mut governor = RogueGovernor;
    sim.run(&mut governor, Time::from_micros(1_000.0));
}

#[test]
#[should_panic(expected = "one operating point per cluster")]
fn wrong_ops_vector_length_panics() {
    let cfg = GpuConfig::small_test();
    let mut sim = Simulation::new(cfg, tiny_workload());
    sim.step_epoch(&[5]); // 2 clusters, 1 op
}

/// Governors consuming pathological counters (zeros, NaN-adjacent derived
/// values) must still return valid indices.
#[test]
fn governors_survive_degenerate_counters() {
    use dvfs_baselines::{
        FlemmaConfig, FlemmaGovernor, OndemandConfig, OndemandGovernor, PcstallConfig,
        PcstallGovernor,
    };
    let table = VfTable::titan_x();
    let zeroed = EpochCounters::zeroed();
    let mut extreme = EpochCounters::zeroed();
    extreme[CounterId::TotalCycles] = 1.0;
    extreme[CounterId::StallMemLoad] = 1e18;
    extreme[CounterId::PowerTotalW] = 1e12;
    extreme[CounterId::TotalInstrs] = 1e18;
    extreme.recompute_derived();

    let mut pcstall = PcstallGovernor::new(PcstallConfig::new(0.10));
    let mut flemma = FlemmaGovernor::new(FlemmaConfig::new(0.10));
    let mut ondemand = OndemandGovernor::new(OndemandConfig::default());
    for counters in [&zeroed, &extreme] {
        for _ in 0..5 {
            assert!(pcstall.decide(0, counters, &table) < table.len());
            assert!(flemma.decide(0, counters, &table) < table.len());
            assert!(ondemand.decide(0, counters, &table) < table.len());
        }
    }
}

/// The SSMDVFS governor must keep producing valid decisions when its
/// calibrator is sabotaged into absurd predictions.
#[test]
fn ssmdvfs_survives_a_broken_calibrator() {
    use rand::SeedableRng;
    use ssmdvfs::{CombinedModel, FeatureSet, SsmdvfsConfig, SsmdvfsGovernor};
    use tinynn::{Matrix, Mlp, Normalizer};

    let fs = FeatureSet::refined();
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let decision = Mlp::new(&[fs.len() + 1, 8, 6], &mut rng);
    let mut calibrator = Mlp::new(&[fs.len() + 2, 8, 1], &mut rng);
    // Sabotage: enormous constant output.
    for b in &mut calibrator.layers_mut().last_mut().unwrap().b {
        *b = 1e9;
    }
    let model = CombinedModel {
        decision,
        calibrator,
        feature_set: fs.clone(),
        decision_norm: Normalizer::fit(&Matrix::zeros(3, fs.len() + 1)),
        calibrator_norm: Normalizer::fit(&Matrix::zeros(3, fs.len() + 2)),
        instr_scale: 1_000.0,
        num_ops: 6,
    };
    let table = VfTable::titan_x();
    let mut governor = SsmdvfsGovernor::new(model, SsmdvfsConfig::new(0.10));
    let mut counters = EpochCounters::zeroed();
    counters[CounterId::TotalCycles] = 10_000.0;
    counters[CounterId::TotalInstrs] = 5_000.0;
    counters.recompute_derived();
    for _ in 0..20 {
        let idx = governor.decide(0, &counters, &table);
        assert!(idx < table.len());
    }
    // The broken calibrator drives the effective preset to its floor — the
    // controller degrades to conservative decisions, never invalid ones.
    assert!(governor.effective_preset(0) >= 0.0);
    assert!(governor.effective_preset(0) <= 0.10);
}

/// A workload longer than the horizon reports an incomplete result instead
/// of hanging or lying.
#[test]
fn horizon_truncation_is_reported() {
    let cfg = GpuConfig::small_test();
    let bench = by_name("gemm").expect("gemm exists"); // full size, ~300 µs on 24 clusters
    let mut sim = Simulation::new(cfg.clone(), bench.into_workload());
    let mut governor = StaticGovernor::default_point(&cfg.vf_table);
    let result = sim.run(&mut governor, Time::from_micros(50.0));
    assert!(!result.completed);
    assert_eq!(result.epochs, 5);
    assert!(result.instructions > 0);
}

/// Model persistence rejects corrupt files with an error, not a panic.
#[test]
fn corrupt_model_file_is_an_error() {
    use ssmdvfs::CombinedModel;
    let dir = std::env::temp_dir().join("ssmdvfs_failure_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bad.json");
    std::fs::write(&path, "{ not json ").unwrap();
    assert!(CombinedModel::load(&path).is_err());
    assert!(CombinedModel::load(dir.join("missing.json")).is_err());
    std::fs::remove_dir_all(&dir).ok();
}
