//! Compare every DVFS governor on one benchmark: static baseline, PCSTALL,
//! F-LEMMA, a freshly trained SSMDVFS, and the one-step-lookahead oracle.
//!
//! ```sh
//! cargo run --release --example governor_compare [benchmark]
//! ```

use dvfs_baselines::{run_oracle, FlemmaConfig, FlemmaGovernor, PcstallConfig, PcstallGovernor};
use gpu_sim::{DvfsGovernor, GpuConfig, SimResult, Simulation, StaticGovernor, Time};
use gpu_workloads::by_name;
use ssmdvfs::{
    generate, train_combined, DataGenConfig, DvfsDataset, FeatureSet, ModelArch, SsmdvfsConfig,
    SsmdvfsGovernor,
};
use tinynn::TrainConfig;

const PRESET: f64 = 0.10;

fn run(
    cfg: &GpuConfig,
    bench: &gpu_workloads::Benchmark,
    governor: &mut dyn DvfsGovernor,
) -> SimResult {
    let mut sim = Simulation::new(cfg.clone(), bench.workload().clone());
    sim.run(governor, Time::from_micros(10_000.0))
}

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "spmv".to_string());
    let cfg = GpuConfig::small_test();
    let bench = by_name(&name)
        .unwrap_or_else(|| panic!("unknown benchmark '{name}'; see gpu_workloads::suite()"))
        .scaled(0.15);
    println!("benchmark: {bench}, preset {:.0}%\n", PRESET * 100.0);

    // Train a small SSMDVFS model on other benchmarks (the target stays
    // held out).
    let mut dataset = DvfsDataset::default();
    for train_name in ["sgemm", "lbm", "hotspot", "srad"].iter().filter(|n| **n != name) {
        let b = by_name(train_name).expect("training benchmark exists").scaled(0.1);
        dataset.extend(generate(&b, &cfg, &DataGenConfig::default()));
    }
    let (model, _) = train_combined(
        &dataset,
        &FeatureSet::refined(),
        &ModelArch::paper_full(),
        cfg.vf_table.len(),
        &TrainConfig { epochs: 120, ..TrainConfig::default() },
        0.25,
    );

    let base = run(&cfg, &bench, &mut StaticGovernor::default_point(&cfg.vf_table));
    let base_report = base.edp_report();

    println!("{:<16} {:>9} {:>9} {:>14}", "governor", "norm_edp", "latency", "op histogram");
    let print_row = |r: &SimResult| {
        let rep = r.edp_report();
        println!(
            "{:<16} {:>9.4} {:>9.4} {:>14}",
            r.governor,
            rep.normalized_edp(&base_report),
            rep.normalized_latency(&base_report),
            format!("{:?}", r.op_histogram),
        );
    };
    print_row(&base);
    print_row(&run(&cfg, &bench, &mut PcstallGovernor::new(PcstallConfig::new(PRESET))));
    print_row(&run(&cfg, &bench, &mut FlemmaGovernor::new(FlemmaConfig::new(PRESET))));
    print_row(&run(&cfg, &bench, &mut SsmdvfsGovernor::new(model, SsmdvfsConfig::new(PRESET))));
    print_row(&run_oracle(&cfg, bench.workload().clone(), PRESET, Time::from_micros(10_000.0)));
}
