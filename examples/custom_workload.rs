//! Define a custom GPU workload from scratch and characterize its frequency
//! sensitivity — the first thing to do before deciding whether DVFS can
//! help an application.
//!
//! ```sh
//! cargo run --release --example custom_workload
//! ```

use gpu_sim::{
    BasicBlock, GpuConfig, InstrClass, KernelSpec, MemoryBehavior, Simulation, StaticGovernor,
    Time, Workload,
};

fn main() {
    let cfg = GpuConfig::small_test();
    let horizon = Time::from_micros(20_000.0);

    // A two-phase application: a compute-heavy "physics" kernel followed by
    // a streaming "update" kernel, similar in spirit to a particle solver.
    let physics = KernelSpec::new(
        "physics",
        vec![
            // Inner loop: load neighbors into shared memory, then a long
            // FMA/SFU chain; a barrier synchronizes the tile.
            BasicBlock::new(
                {
                    let mut body = vec![InstrClass::LoadGlobal, InstrClass::LoadShared];
                    body.extend([InstrClass::FpAlu; 8]);
                    body.push(InstrClass::Sfu);
                    body.push(InstrClass::Barrier);
                    body
                },
                120,
                0.0,
            ),
        ],
        8,
        96,
        MemoryBehavior::cache_friendly(8 << 20, 0.7),
    );
    let update = KernelSpec::new(
        "update",
        vec![BasicBlock::new(
            vec![
                InstrClass::LoadGlobal,
                InstrClass::FpAlu,
                InstrClass::FpAlu,
                InstrClass::StoreGlobal,
            ],
            150,
            0.0,
        )],
        8,
        64,
        MemoryBehavior::streaming(64 << 20),
    );
    let workload = Workload::new("particle_solver", vec![physics, update]);
    println!(
        "custom workload '{}': {} kernels, {} total warp-instructions\n",
        workload.name(),
        workload.kernels().len(),
        workload.total_instructions()
    );

    // Frequency-sensitivity sweep: run the whole application at every
    // operating point and report slowdown and energy vs the default.
    let mut baseline = None;
    println!(
        "{:>4} {:>12} {:>11} {:>12} {:>10} {:>10}",
        "op", "freq (MHz)", "time (µs)", "energy (mJ)", "slowdown", "norm EDP"
    );
    for idx in (0..cfg.vf_table.len()).rev() {
        let mut sim = Simulation::new(cfg.clone(), workload.clone());
        let mut governor = StaticGovernor::new(idx);
        let result = sim.run(&mut governor, horizon);
        assert!(result.completed);
        let report = result.edp_report();
        if idx == cfg.vf_table.default_index() {
            baseline = Some(report);
        }
        let base = baseline.as_ref().expect("default point runs first");
        println!(
            "{:>4} {:>12.0} {:>11.1} {:>12.3} {:>10.3} {:>10.3}",
            idx,
            cfg.vf_table.point(idx).freq_mhz(),
            report.time_s() * 1e6,
            report.energy().millijoules(),
            report.normalized_latency(base),
            report.normalized_edp(base),
        );
    }
    println!(
        "\nthe mixed phase structure means a static point is always a compromise — \
         a per-epoch governor can run the physics phase fast and the update phase slow."
    );
}
