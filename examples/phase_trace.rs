//! Watch a governor track program phases, epoch by epoch.
//!
//! Runs the two-phase `backprop` benchmark (compute-heavy forward pass,
//! memory-heavy weight update) under PCSTALL, prints a per-epoch view of the
//! chosen operating points, and writes the full 47-counter trace to a CSV
//! for plotting.
//!
//! ```sh
//! cargo run --release --example phase_trace
//! ```

use dvfs_baselines::{PcstallConfig, PcstallGovernor};
use gpu_sim::{epoch_trace_csv, CounterId, GpuConfig, Simulation, Time};
use gpu_workloads::by_name;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = GpuConfig::small_test();
    let bench = by_name("backprop").expect("backprop is in the suite").scaled(0.15);
    println!("benchmark: {bench} (two phases: compute-bound forward, memory-bound update)\n");

    let mut sim = Simulation::new(cfg.clone(), bench.into_workload());
    let mut governor = PcstallGovernor::new(PcstallConfig::new(0.10));
    let result = sim.run(&mut governor, Time::from_micros(20_000.0));
    assert!(result.completed);

    println!(
        "{:>5} {:>9} {:>8} {:>10} {:>10} {:>9}",
        "epoch", "t (µs)", "op", "IPC", "mem-stall%", "power (W)"
    );
    for record in sim.records() {
        let c = &record.clusters[0];
        let counters = &c.counters;
        let cycles = counters[CounterId::TotalCycles].max(1.0);
        let mem_stall = 100.0
            * (counters[CounterId::StallMemLoad] + counters[CounterId::StallMemOther])
            / cycles;
        println!(
            "{:>5} {:>9.1} {:>8} {:>10.2} {:>10.1} {:>9.2}",
            record.index,
            record.start.as_micros(),
            format!("{} MHz", cfg.vf_table.point(c.op_index).freq_mhz()),
            counters[CounterId::Ipc],
            mem_stall,
            counters[CounterId::PowerTotalW],
        );
    }

    let path = std::env::temp_dir().join("ssmdvfs_phase_trace.csv");
    std::fs::write(&path, epoch_trace_csv(sim.records()))?;
    println!(
        "\nfull per-cluster trace written to {} — watch the operating point drop\n\
         when the memory-bound update phase arrives and recover for the next\n\
         forward pass.",
        path.display()
    );
    Ok(())
}
