//! Explore the inference-module design space: MAC parallelism vs latency vs
//! area, for the FP32 and INT8 datapaths.
//!
//! ```sh
//! cargo run --release --example asic_explore
//! ```

use rand::SeedableRng;
use ssmdvfs::{estimate_asic, AsicConfig, CombinedModel, FeatureSet, ModelArch};
use tinynn::{prune_two_stage, Matrix, Mlp, Normalizer};

/// Builds a stand-in compressed model (the real pipeline would load one
/// trained by `ssmdvfs train` + `ssmdvfs compress`).
fn compressed_model() -> CombinedModel {
    let fs = FeatureSet::refined();
    let arch = ModelArch::paper_compressed();
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let mut dec_sizes = vec![fs.len() + 1];
    dec_sizes.extend(&arch.decision_hidden);
    dec_sizes.push(6);
    let mut cal_sizes = vec![fs.len() + 2];
    cal_sizes.extend(&arch.calibrator_hidden);
    cal_sizes.push(1);
    let mut model = CombinedModel {
        decision: Mlp::new(&dec_sizes, &mut rng),
        calibrator: Mlp::new(&cal_sizes, &mut rng),
        feature_set: fs.clone(),
        decision_norm: Normalizer::fit(&Matrix::zeros(4, fs.len() + 1)),
        calibrator_norm: Normalizer::fit(&Matrix::zeros(4, fs.len() + 2)),
        instr_scale: 1000.0,
        num_ops: 6,
    };
    model.decision = prune_two_stage(&model.decision, 0.6, 0.9);
    model.calibrator = prune_two_stage(&model.calibrator, 0.6, 0.9);
    model
}

fn main() {
    let model = compressed_model();
    println!(
        "model: {} sparse FLOPs ({} non-zero weights)\n",
        model.sparse_flops(),
        model.decision.nonzero_weights() + model.calibrator.nonzero_weights()
    );
    println!(
        "{:>9} {:>6} {:>11} {:>10} {:>14} {:>10}",
        "datapath", "MACs", "cycles/inf", "lat (µs)", "area28 (mm²)", "power (W)"
    );
    for (label, base) in [("fp32", AsicConfig::tsmc65()), ("int8", AsicConfig::tsmc65_int8())] {
        for mac_units in [1usize, 2, 4, 8] {
            let cfg = AsicConfig { mac_units, ..base.clone() };
            let r = estimate_asic(&model, &cfg, 1165.0, 10.0);
            println!(
                "{label:>9} {mac_units:>6} {:>11} {:>10.3} {:>14.4} {:>10.4}",
                r.cycles_per_inference, r.latency_us, r.area_28nm_mm2, r.power_w
            );
        }
    }
    println!(
        "\nthe paper's single-MAC FP32 point (row 1) already fits in 1.5% of a 10 µs\n\
         epoch; wider arrays buy latency that a per-epoch controller cannot use,\n\
         while INT8 shrinks area ~3x at equal cycles."
    );
}
