//! Quickstart: simulate a GPU benchmark under a DVFS governor and inspect
//! energy, latency and EDP.
//!
//! Uses the scaled-down test GPU (2 clusters) so it runs in seconds:
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use gpu_sim::{GpuConfig, Simulation, StaticGovernor, Time};
use gpu_workloads::by_name;

fn main() {
    // A 2-cluster GPU with Titan-X timing/power parameters.
    let cfg = GpuConfig::small_test();
    // A synthetic LBM (lattice-Boltzmann): the classic streaming,
    // memory-bound workload — the best case for DVFS.
    let bench = by_name("lbm").expect("lbm is part of the suite").scaled(0.2);
    let horizon = Time::from_micros(10_000.0);

    println!("benchmark: {bench}");
    println!("operating points: {}", cfg.vf_table);
    println!();

    // Sweep every static operating point to see the energy/latency tradeoff.
    println!(
        "{:>5}  {:>12}  {:>10}  {:>10}  {:>12}",
        "op", "freq (MHz)", "time (µs)", "energy (mJ)", "EDP (nJ·s)"
    );
    let mut baseline_edp = None;
    for idx in (0..cfg.vf_table.len()).rev() {
        let mut sim = Simulation::new(cfg.clone(), bench.workload().clone());
        let mut governor = StaticGovernor::new(idx);
        let result = sim.run(&mut governor, horizon);
        assert!(result.completed, "workload must finish within the horizon");
        let report = result.edp_report();
        let edp = report.edp();
        if idx == cfg.vf_table.default_index() {
            baseline_edp = Some(edp);
        }
        println!(
            "{:>5}  {:>12.0}  {:>10.1}  {:>10.3}  {:>12.3}",
            idx,
            cfg.vf_table.point(idx).freq_mhz(),
            report.time_s() * 1e6,
            report.energy().millijoules(),
            edp * 1e9,
        );
    }

    let baseline_edp = baseline_edp.expect("the default point is part of the sweep");
    let mut base_sim = Simulation::new(cfg.clone(), bench.workload().clone());
    let mut base_governor = StaticGovernor::default_point(&cfg.vf_table);
    let base = base_sim.run(&mut base_governor, horizon).edp_report();
    let mut best_sim = Simulation::new(cfg.clone(), bench.workload().clone());
    let mut best_governor = StaticGovernor::new(0);
    let best = best_sim.run(&mut best_governor, horizon).edp_report();
    println!();
    println!(
        "running this memory-bound workload at the 683 MHz floor costs only {:.1}% time \
         but improves EDP by {:.1}% — the headroom SSMDVFS learns to exploit.",
        best.performance_loss(&base) * 100.0,
        (1.0 - best.edp() / baseline_edp) * 100.0
    );
}
