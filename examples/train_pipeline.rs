//! The full SSMDVFS offline pipeline, end to end, on a scaled-down
//! configuration: data generation → model training → compression →
//! hardware cost estimate → model persistence.
//!
//! ```sh
//! cargo run --release --example train_pipeline
//! ```

use gpu_sim::{GpuConfig, Simulation, Time};
use gpu_workloads::by_name;
use ssmdvfs::{
    compress_and_finetune, estimate_asic, generate, train_combined, AsicConfig, DataGenConfig,
    DvfsDataset, FeatureSet, ModelArch, SsmdvfsConfig, SsmdvfsGovernor,
};
use tinynn::TrainConfig;

fn main() {
    let cfg = GpuConfig::small_test();
    let dg = DataGenConfig::default();

    // 1. Data generation (Fig. 2): a few training benchmarks, scaled down.
    println!("== 1. data generation ==");
    let mut dataset = DvfsDataset::default();
    for name in ["sgemm", "lbm", "hotspot", "srad"] {
        let bench = by_name(name).expect("benchmark exists").scaled(0.1);
        let part = generate(&bench, &cfg, &dg);
        println!("  {name}: {} samples", part.len());
        dataset.extend(part);
    }

    // 2. Train the combined Decision-maker + Calibrator.
    println!("== 2. training ==");
    let train_cfg = TrainConfig { epochs: 120, ..TrainConfig::default() };
    let (model, summary) = train_combined(
        &dataset,
        &FeatureSet::refined(),
        &ModelArch::paper_full(),
        cfg.vf_table.len(),
        &train_cfg,
        0.25,
    );
    println!(
        "  decision accuracy {:.1}%, calibrator MAPE {:.1}%, {} FLOPs",
        summary.decision_accuracy * 100.0,
        summary.calibrator_mape,
        summary.flops
    );

    // 3. Compress: two-stage pruning at the paper's (0.6, 0.9) + fine-tune.
    println!("== 3. compression ==");
    let compressed = compress_and_finetune(&model, &dataset, 0.6, 0.9, &train_cfg);
    println!(
        "  {} -> {} FLOPs ({:.1}% reduction)",
        model.flops(),
        compressed.sparse_flops(),
        (1.0 - compressed.sparse_flops() as f64 / model.flops() as f64) * 100.0
    );

    // 4. Hardware cost of the inference module (Section V-D).
    println!("== 4. ASIC estimate ==");
    let asic = estimate_asic(
        &compressed,
        &AsicConfig::tsmc65(),
        cfg.vf_table.default_point().freq_mhz(),
        cfg.epoch.as_micros(),
    );
    println!(
        "  {} cycles/inference ({:.3} µs, {:.2}% of an epoch), {:.4} mm² @28nm, {:.4} W",
        asic.cycles_per_inference,
        asic.latency_us,
        asic.epoch_fraction * 100.0,
        asic.area_28nm_mm2,
        asic.power_w
    );

    // 5. Deploy on a held-out benchmark.
    println!("== 5. runtime control on held-out 'mvt' ==");
    let bench = by_name("mvt").expect("mvt exists").scaled(0.1);
    let horizon = Time::from_micros(10_000.0);
    let mut base_sim = Simulation::new(cfg.clone(), bench.workload().clone());
    let mut base_gov = gpu_sim::StaticGovernor::default_point(&cfg.vf_table);
    let base = base_sim.run(&mut base_gov, horizon).edp_report();
    let mut sim = Simulation::new(cfg.clone(), bench.workload().clone());
    let mut governor = SsmdvfsGovernor::new(compressed.clone(), SsmdvfsConfig::new(0.10));
    let tuned = sim.run(&mut governor, horizon).edp_report();
    println!(
        "  EDP {:.3} (normalized), latency {:.3} (preset 1.10)",
        tuned.normalized_edp(&base),
        tuned.normalized_latency(&base)
    );

    // 6. Persist the model.
    let path = std::env::temp_dir().join("ssmdvfs_example_model.json");
    compressed.save(&path).expect("model is serializable");
    println!("== 6. model saved to {} ==", path.display());
}
