#!/usr/bin/env bash
# Local CI gate: formatting, lints, release build, full test suite, and a
# smoke run of the datagen perf baseline. Run from the repo root; every
# step must pass. See README.md ("Install & build").
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --workspace --release

echo "==> cargo test"
cargo test --workspace -q

echo "==> perf baseline (smoke)"
cargo run --release -p ssmdvfs-bench --bin perf_baseline -- --smoke

echo "==> CI passed"
