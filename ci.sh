#!/usr/bin/env bash
# Local CI gate: formatting, lints, release build, full test suite, and a
# smoke run of the datagen perf baseline. Run from the repo root; every
# step must pass. See README.md ("Install & build").
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --workspace --release

echo "==> cargo test"
cargo test --workspace -q

echo "==> criterion benches compile"
cargo bench --workspace --no-run

echo "==> perf baseline (smoke)"
cargo run --release -p ssmdvfs-bench --bin perf_baseline -- --smoke

echo "==> train/RFE perf baseline (smoke, JSON well-formed, parallel SGD identical)"
cargo run --release -p ssmdvfs-bench --bin perf_baseline -- --smoke --train
python3 - <<'EOF'
import json
b = json.load(open("target/ssmdvfs-artifacts/BENCH_train.json"))
for key in ("epochs_per_sec", "parallel_epochs_per_sec", "train_speedup",
            "rfe_serial_secs", "rfe_parallel_secs",
            "infer_dense_ns", "infer_engine_ns", "infer_quantized_ns"):
    assert b[key] > 0, (key, b)
assert b["smoke"] is True and b["engine_sparse"] is True, b
assert b["parallel_identical"] is True, "parallel SGD diverged from serial"
assert b["grad_shards_per_batch"] > 1, b
# The >=1.3x speedup gate only means something when the container actually
# has cores to parallelize over (see the 1-core caveat in
# docs/performance.md).
if b["workers"] >= 4:
    assert b["train_speedup"] >= 1.3, \
        f"parallel SGD must be >=1.3x at {b['train_jobs']} jobs: {b}"
print(f"train baseline: {b['epochs_per_sec']:.0f} epochs/s serial, "
      f"{b['parallel_epochs_per_sec']:.0f} at {b['train_jobs']} jobs "
      f"({b['train_speedup']:.2f}x, {b['grad_shards_per_batch']} shards/batch, "
      f"identical), RFE {b['rfe_serial_secs']:.2f}s -> "
      f"{b['rfe_parallel_secs']:.2f}s at {b['rfe_jobs']} workers")
EOF

echo "==> sim engine perf baseline (smoke, JSON well-formed, skip >= 1.5x)"
cargo run --release -p ssmdvfs-bench --bin perf_baseline -- --smoke --sim
python3 - <<'EOF'
import json
b = json.load(open("target/ssmdvfs-artifacts/BENCH_sim.json"))
for key in ("naive_cycles_per_sec", "skip_cycles_per_sec", "speedup",
            "total_cycles", "snapshot_cost_us", "cache_cold_secs",
            "cache_warm_secs"):
    assert b[key] > 0, (key, b)
assert b["smoke"] is True, b
assert b["speedup"] >= 1.5, f"cycle-skip must be >=1.5x over naive tick: {b}"
assert b["cache_warm_hits"] > 0, b
print(f"sim baseline: {b['naive_cycles_per_sec']:.3g} -> "
      f"{b['skip_cycles_per_sec']:.3g} cycles/s ({b['speedup']:.2f}x, "
      f"{b['skipped_fraction']*100:.1f}% skipped); replay cache "
      f"{b['cache_cold_secs']:.2f}s cold -> {b['cache_warm_secs']:.2f}s warm "
      f"({b['cache_warm_hits']} hits)")
EOF

echo "==> serve perf baseline (smoke, JSON well-formed, decisions identical)"
cargo run --release -p ssmdvfs-bench --bin perf_baseline -- --smoke --serve
python3 - <<'EOF'
import json
b = json.load(open("target/ssmdvfs-artifacts/BENCH_serve.json"))
for key in ("single_throughput_rps", "batched_throughput_rps", "speedup",
            "batched_p50_us", "batched_p99_us", "mean_batch_occupancy"):
    assert b[key] > 0, (key, b)
assert b["smoke"] is True, b
assert b["decisions_identical"] is True, "batching changed a decision"
assert b["deadline_misses"] == 0, b
print(f"serve baseline: {b['single_throughput_rps']:.0f} -> "
      f"{b['batched_throughput_rps']:.0f} req/s ({b['speedup']:.2f}x), "
      f"mean batch {b['mean_batch_occupancy']:.1f}, "
      f"p99 {b['batched_p99_us']:.0f} us")
EOF

echo "==> decide perf baseline (smoke, plan beats unfused path, decisions identical)"
cargo run --release -p ssmdvfs-bench --bin perf_baseline -- --smoke --decide
python3 - <<'EOF'
import json
b = json.load(open("target/ssmdvfs-artifacts/BENCH_decide.json"))
for key in ("kernel_dense_ns", "kernel_csr_ns", "kernel_int8_ns",
            "reference_decision_ns", "plan_decision_ns", "plan_quantized_ns",
            "plan_memo_hit_ns", "memo_hit_rate"):
    assert b[key] > 0, (key, b)
assert b["smoke"] is True and b["kernel_csr_sparse"] is True, b
assert b["decisions_identical"] is True, "plan/memo/reference decisions diverged"
assert b["plan_decision_ns"] < b["reference_decision_ns"], \
    f"fused plan must beat the unfused reference path: {b}"
assert b["kernel_int8_ns"] < b["kernel_dense_ns"], \
    f"INT8 kernel must beat the dense f32 kernel: {b}"
assert b["plan_memo_hit_ns"] < b["plan_decision_ns"], b
assert b["memo_hits"] > 0, "phase-structured replay produced no memo hits"
print(f"decide baseline: kernels {b['kernel_dense_ns']:.0f}/"
      f"{b['kernel_csr_ns']:.0f}/{b['kernel_int8_ns']:.0f} ns dense/csr/int8; "
      f"decision {b['reference_decision_ns']:.0f} ns reference -> "
      f"{b['plan_decision_ns']:.0f} ns plan, {b['plan_memo_hit_ns']:.0f} ns "
      f"memo hit ({b['memo_hit_rate']*100:.1f}% hit rate, identical)")
EOF

echo "==> no stray print macros in library crates"
# Library code logs through obs; println!/eprintln! are reserved for the
# CLI binary and bench bin/ entry points. Comment lines are ignored.
if grep -rn --include='*.rs' -E '(println!|eprintln!)' crates/*/src \
    | grep -v '/bin/' \
    | grep -v 'crates/cli/src/main.rs' \
    | grep -vE ':[0-9]+:\s*(//|///|//!)'; then
  echo "error: stray println!/eprintln! in library code (use obs log macros)" >&2
  exit 1
fi

echo "==> observability smoke (metrics + Chrome trace parse as JSON)"
OBS_TMP="$(mktemp -d)"
trap 'rm -rf "$OBS_TMP"' EXIT
cargo run --release -p ssmdvfs-cli --bin ssmdvfs -- datagen \
  --out "$OBS_TMP/data.json" --benchmarks sgemm --scale 0.05 \
  --clusters 2 --jobs 2 \
  --metrics-out "$OBS_TMP/metrics.json" --trace-out "$OBS_TMP/trace.json"
python3 - "$OBS_TMP" <<'EOF'
import json, sys, os
tmp = sys.argv[1]
metrics = json.load(open(os.path.join(tmp, "metrics.json")))
assert "datagen.replays" in metrics["counters"], metrics
trace = json.load(open(os.path.join(tmp, "trace.json")))
assert isinstance(trace["traceEvents"], list) and trace["traceEvents"], trace
print(f"metrics: {len(metrics['counters'])} counters; "
      f"trace: {len(trace['traceEvents'])} events")
EOF

SSMDVFS_BIN=target/release/ssmdvfs

echo "==> kill-and-resume smoke (resumed dataset is byte-identical)"
# Reference: one uninterrupted run. Then the same sweep journaled, killed
# with SIGKILL mid-flight, and resumed from the journal; the resumed
# dataset must match the reference byte for byte. If the journaled run
# happens to finish before the kill lands, resume still has to reproduce
# the identical bytes, so the step is robust to timing.
"$SSMDVFS_BIN" datagen --out "$OBS_TMP/ref.json" \
  --benchmarks sgemm,lbm --scale 0.1 --clusters 2 --jobs 2 --log-level warn
: > "$OBS_TMP/ck.jsonl"
"$SSMDVFS_BIN" datagen --out "$OBS_TMP/killed.json" \
  --benchmarks sgemm,lbm --scale 0.1 --clusters 2 --jobs 2 --log-level warn \
  --checkpoint "$OBS_TMP/ck.jsonl" &
KILL_PID=$!
sleep 1
kill -9 "$KILL_PID" 2>/dev/null || true
wait "$KILL_PID" 2>/dev/null || true
echo "journal lines at kill: $(wc -l < "$OBS_TMP/ck.jsonl")"
"$SSMDVFS_BIN" datagen --out "$OBS_TMP/resumed.json" \
  --benchmarks sgemm,lbm --scale 0.1 --clusters 2 --jobs 2 --log-level warn \
  --resume "$OBS_TMP/ck.jsonl"
cmp "$OBS_TMP/ref.json" "$OBS_TMP/resumed.json"
echo "resumed dataset identical to uninterrupted run"

echo "==> replay-cache determinism smoke (warm rerun hits cache, bytes identical)"
# Cold run populates the cache; the warm rerun (different worker count on
# purpose) must satisfy every replay from the cache and still produce
# byte-identical dataset output. `inspect --metrics` surfaces the counters.
"$SSMDVFS_BIN" datagen --out "$OBS_TMP/cache-cold.json" \
  --benchmarks sgemm --scale 0.05 --clusters 2 --jobs 2 --log-level warn \
  --replay-cache "$OBS_TMP/replay-cache.json" \
  --metrics-out "$OBS_TMP/cache-cold-metrics.json"
"$SSMDVFS_BIN" datagen --out "$OBS_TMP/cache-warm.json" \
  --benchmarks sgemm --scale 0.05 --clusters 2 --jobs 4 --log-level warn \
  --replay-cache "$OBS_TMP/replay-cache.json" \
  --metrics-out "$OBS_TMP/cache-warm-metrics.json"
cmp "$OBS_TMP/cache-cold.json" "$OBS_TMP/cache-warm.json"
"$SSMDVFS_BIN" inspect --metrics "$OBS_TMP/cache-warm-metrics.json" \
  | tee "$OBS_TMP/cache-inspect.log"
grep -q "cache hits" "$OBS_TMP/cache-inspect.log"

echo "==> fleet smoke (batched serving drives a small fleet, 0 panics)"
# A tiny fleet through the micro-batching decision service; the metrics
# snapshot must surface the serve plane, including the deadline-miss
# counter pre-registered at zero.
"$SSMDVFS_BIN" fleet --gpus 3 --max-batch 4 --shards 1 --jobs 2 \
  --clusters 2 --scale 0.02 --horizon-us 300 --log-level warn \
  --metrics-out "$OBS_TMP/fleet-metrics.json" | tee "$OBS_TMP/fleet.log"
grep -q "misses    : 0 past deadline" "$OBS_TMP/fleet.log"
python3 - "$OBS_TMP" <<'EOF'
import json, sys, os
m = json.load(open(os.path.join(sys.argv[1], "fleet-metrics.json")))
assert "serve.deadline_misses" in m["counters"], sorted(m["counters"])
assert m["counters"]["serve.deadline_misses"] == 0, m["counters"]
assert any(h.startswith("serve.batch_size") for h in m["histograms"]), m
assert any(h.startswith("serve.decision_latency_us") for h in m["histograms"]), m
decided = m["counters"].get("decide.memo_hits", 0) + m["counters"].get("decide.memo_misses", 0)
assert decided > 0, ("no decide.* memo counters from the plan", sorted(m["counters"]))
assert any(h.startswith("decide.plan_latency_ns") for h in m["histograms"]), m
print(f"fleet metrics: serve.deadline_misses=0, batch/latency histograms present, "
      f"{decided} plan decisions counted")
EOF
"$SSMDVFS_BIN" inspect --metrics "$OBS_TMP/fleet-metrics.json" \
  | tee "$OBS_TMP/fleet-inspect.log"
grep -q "memo hits" "$OBS_TMP/fleet-inspect.log"
grep -q "plan decisions" "$OBS_TMP/fleet-inspect.log"
python3 - "$OBS_TMP" <<'EOF'
import json, sys, os
tmp = sys.argv[1]
cold = json.load(open(os.path.join(tmp, "cache-cold-metrics.json")))["counters"]
warm = json.load(open(os.path.join(tmp, "cache-warm-metrics.json")))["counters"]
assert cold.get("sim.cache_hits", 0) == 0, cold
assert cold["sim.cache_misses"] > 0, cold
assert warm["sim.cache_hits"] > 0, warm
assert warm.get("sim.cache_misses", 0) == 0, warm
print(f"replay cache: {cold['sim.cache_misses']} misses cold, "
      f"{warm['sim.cache_hits']} hits warm; dataset bytes identical")
EOF

echo "==> train-determinism smoke (--jobs 1 and --jobs 4 models byte-identical)"
# The sharded-gradient SGD engine must produce the same serialized model at
# any worker count; the metrics snapshot must surface the new training
# counters (grad shards, parallel batches, batch-latency histogram).
"$SSMDVFS_BIN" train --dataset "$OBS_TMP/data.json" \
  --out "$OBS_TMP/model-j1.json" --epochs 6 --jobs 1 --log-level warn \
  --metrics-out "$OBS_TMP/train-j1-metrics.json"
"$SSMDVFS_BIN" train --dataset "$OBS_TMP/data.json" \
  --out "$OBS_TMP/model-j4.json" --epochs 6 --jobs 4 --log-level warn \
  --metrics-out "$OBS_TMP/train-j4-metrics.json"
cmp "$OBS_TMP/model-j1.json" "$OBS_TMP/model-j4.json"
echo "trained models identical at --jobs 1 and --jobs 4"
python3 - "$OBS_TMP" <<'EOF'
import json, sys, os
tmp = sys.argv[1]
j1 = json.load(open(os.path.join(tmp, "train-j1-metrics.json")))
j4 = json.load(open(os.path.join(tmp, "train-j4-metrics.json")))
for m, jobs in ((j1, 1), (j4, 4)):
    assert m["counters"]["train.grad_shards"] > 0, (jobs, m["counters"])
    assert "train.parallel_batches" in m["counters"], (jobs, sorted(m["counters"]))
    assert any(h.startswith("train.batch_latency_us") for h in m["histograms"]), \
        (jobs, sorted(m["histograms"]))
assert j1["counters"]["train.parallel_batches"] == 0, j1["counters"]
assert j4["counters"]["train.parallel_batches"] > 0, j4["counters"]
assert j1["counters"]["train.grad_shards"] == j4["counters"]["train.grad_shards"], \
    (j1["counters"], j4["counters"])
print(f"train metrics: {j4['counters']['train.grad_shards']} grad shards "
      f"(same at 1 and 4 jobs), {j4['counters']['train.parallel_batches']} "
      f"parallel batches at 4 jobs, latency histogram present")
EOF

echo "==> fault-injection smoke (quarantine survives an injected panic)"
# Arm job #0 to panic more times than the retry budget: the sweep must
# still complete, write a dataset, and print a non-empty fault report
# naming the dropped unit.
SSMDVFS_FAILPOINTS="datagen.replay=0x99" "$SSMDVFS_BIN" datagen \
  --out "$OBS_TMP/faulted.json" --benchmarks sgemm --scale 0.05 \
  --clusters 2 --jobs 2 --log-level warn --quarantine --max-retries 1 \
  | tee "$OBS_TMP/fault.log"
test -s "$OBS_TMP/faulted.json"
grep -q "fault report: .* 1 dropped units" "$OBS_TMP/fault.log"
grep -q "failpoint datagen.replay#0" "$OBS_TMP/fault.log"

echo "==> live telemetry smoke (exporter scraped mid-run, watch renders rates)"
# A datagen run serves /metrics on an ephemeral port and lingers briefly
# after finishing so the scrape can never race completion. The exporter
# logs its bound address to stderr; the scrape checks Prometheus text
# exposition validity and the presence of the counters the SLO gates key
# on (pre-registered, so they appear even at zero).
"$SSMDVFS_BIN" datagen --out "$OBS_TMP/live.json" \
  --benchmarks sgemm --scale 0.05 --clusters 2 --jobs 2 \
  --replay-cache "$OBS_TMP/replay-cache.json" \
  --serve-metrics 127.0.0.1:0 --serve-linger 20 \
  2> "$OBS_TMP/live.stderr" &
LIVE_PID=$!
METRICS_ADDR=""
for _ in $(seq 1 100); do
  METRICS_ADDR="$(sed -n 's/.*serving metrics on \([0-9.:]*\).*/\1/p' \
    "$OBS_TMP/live.stderr" | head -n1)"
  [ -n "$METRICS_ADDR" ] && break
  sleep 0.1
done
test -n "$METRICS_ADDR" || { cat "$OBS_TMP/live.stderr"; exit 1; }
echo "exporter at $METRICS_ADDR"
python3 - "$METRICS_ADDR" "$OBS_TMP" <<'EOF'
import sys, urllib.request
addr, tmp = sys.argv[1], sys.argv[2]
health = urllib.request.urlopen(f"http://{addr}/healthz", timeout=10).read().decode()
assert "ok" in health, health
text = urllib.request.urlopen(f"http://{addr}/metrics", timeout=10).read().decode()
open(f"{tmp}/metrics.prom", "w").write(text)
families = set()
for line in text.splitlines():
    if line.startswith("# TYPE "):
        name, kind = line.split()[2:4]
        assert kind in ("counter", "gauge", "histogram"), line
        families.add(name)
    elif line and not line.startswith("#"):
        sample = line.split()
        assert len(sample) == 2, line
        float(sample[1])  # every sample value must parse
for required in ("sim_cache_hits", "train_epochs", "exec_quarantine_dropped"):
    assert required in families, (required, sorted(families))
print(f"scraped {len(families)} metric families, required counters present")
EOF
"$SSMDVFS_BIN" watch "$METRICS_ADDR" | tee "$OBS_TMP/watch.log"
grep -q "cache hit ratio" "$OBS_TMP/watch.log"
wait "$LIVE_PID"
cmp "$OBS_TMP/live.json" "$OBS_TMP/cache-cold.json"
echo "live-scraped dataset identical to unobserved run"

echo "==> phase profiler smoke (collapsed stacks + inspect --profile)"
"$SSMDVFS_BIN" datagen --out "$OBS_TMP/prof.json" \
  --benchmarks sgemm --scale 0.05 --clusters 2 --jobs 2 --log-level warn \
  --profile-out "$OBS_TMP/profile.json" \
  --profile-collapsed "$OBS_TMP/profile.folded"
"$SSMDVFS_BIN" inspect --profile "$OBS_TMP/profile.json" \
  | tee "$OBS_TMP/profile.log"
grep -q "datagen" "$OBS_TMP/profile.log"
grep -q "datagen.replay" "$OBS_TMP/profile.folded"
# At least one nested path (worker -> replay) proves stacks collapse.
grep -q ";" "$OBS_TMP/profile.folded"

echo "==> SLO gate (passes on the current trajectory)"
"$SSMDVFS_BIN" slo-check --baseline docs/perf \
  --current target/ssmdvfs-artifacts \
  --metrics "$OBS_TMP/cache-warm-metrics.json" \
  --slo docs/perf/slo.toml
"$SSMDVFS_BIN" slo-check --baseline docs/perf --slo docs/perf/slo.toml

echo "==> SLO gate (tightened rules must fail with the named rule)"
# A cache hit ratio above 1.0 is unsatisfiable by construction, so the
# tightened policy must exit nonzero and name the violated rule.
cat > "$OBS_TMP/slo-tight.toml" <<'EOF'
[[rule]]
name = "impossible-cache-ratio"
kind = "min_ratio"
numerator = "sim.cache_hits"
denominator = "sim.cache_hits, sim.cache_misses"
min = 1.01
EOF
if "$SSMDVFS_BIN" slo-check --baseline docs/perf \
    --metrics "$OBS_TMP/cache-warm-metrics.json" \
    --slo "$OBS_TMP/slo-tight.toml" > "$OBS_TMP/slo-tight.log" 2>&1; then
  echo "error: tightened SLO policy unexpectedly passed" >&2
  cat "$OBS_TMP/slo-tight.log" >&2
  exit 1
fi
grep -q "impossible-cache-ratio" "$OBS_TMP/slo-tight.log"
echo "tightened SLO failed as intended, naming the violated rule"

echo "==> CI passed"
