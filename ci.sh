#!/usr/bin/env bash
# Local CI gate: formatting, lints, release build, full test suite, and a
# smoke run of the datagen perf baseline. Run from the repo root; every
# step must pass. See README.md ("Install & build").
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --workspace --release

echo "==> cargo test"
cargo test --workspace -q

echo "==> perf baseline (smoke)"
cargo run --release -p ssmdvfs-bench --bin perf_baseline -- --smoke

echo "==> no stray print macros in library crates"
# Library code logs through obs; println!/eprintln! are reserved for the
# CLI binary and bench bin/ entry points. Comment lines are ignored.
if grep -rn --include='*.rs' -E '(println!|eprintln!)' crates/*/src \
    | grep -v '/bin/' \
    | grep -v 'crates/cli/src/main.rs' \
    | grep -vE ':[0-9]+:\s*(//|///|//!)'; then
  echo "error: stray println!/eprintln! in library code (use obs log macros)" >&2
  exit 1
fi

echo "==> observability smoke (metrics + Chrome trace parse as JSON)"
OBS_TMP="$(mktemp -d)"
trap 'rm -rf "$OBS_TMP"' EXIT
cargo run --release -p ssmdvfs-cli --bin ssmdvfs -- datagen \
  --out "$OBS_TMP/data.json" --benchmarks sgemm --scale 0.05 \
  --clusters 2 --jobs 2 \
  --metrics-out "$OBS_TMP/metrics.json" --trace-out "$OBS_TMP/trace.json"
python3 - "$OBS_TMP" <<'EOF'
import json, sys, os
tmp = sys.argv[1]
metrics = json.load(open(os.path.join(tmp, "metrics.json")))
assert "datagen.replays" in metrics["counters"], metrics
trace = json.load(open(os.path.join(tmp, "trace.json")))
assert isinstance(trace["traceEvents"], list) and trace["traceEvents"], trace
print(f"metrics: {len(metrics['counters'])} counters; "
      f"trace: {len(trace['traceEvents'])} events")
EOF

echo "==> CI passed"
