//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface this workspace's benches use — [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher::iter`]/[`Bencher::iter_batched`],
//! [`BatchSize`], and the [`criterion_group!`]/[`criterion_main!`] macros —
//! backed by a simple wall-clock harness: warm up briefly, run the sampled
//! iterations, report mean time per iteration. No statistics engine, no
//! HTML reports; output is one line per benchmark on stdout.

use std::hint;
use std::time::{Duration, Instant};

/// Opaque black box preventing the optimizer from deleting a benchmark body.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// How per-iteration setup output should be batched in
/// [`Bencher::iter_batched`]. All variants behave identically here
/// (setup runs once per measured call).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Measures one benchmark routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, excluding nothing: the loop body is the measurement.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` on fresh values from `setup`, excluding setup time
    /// from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut measured = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            measured += start.elapsed();
        }
        self.elapsed = measured;
    }
}

/// A named set of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many measured iterations each benchmark runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark under this group's name prefix.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        // Warm-up pass, then the measured pass.
        let mut warm = Bencher { iters: 1, elapsed: Duration::ZERO };
        f(&mut warm);
        let mut bencher = Bencher { iters: self.sample_size as u64, elapsed: Duration::ZERO };
        f(&mut bencher);
        let per_iter = bencher.elapsed.as_secs_f64() / bencher.iters.max(1) as f64;
        println!("{full:<48} {:>12.3} us/iter ({} iters)", per_iter * 1e6, bencher.iters);
        self
    }

    /// Finishes the group (kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Creates a harness with default settings.
    pub fn new() -> Criterion {
        Criterion {}
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: 10, _criterion: self }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.benchmark_group(&id).bench_function("default", f);
        self
    }
}

/// Bundles benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::new();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running the listed group runners.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_measures_something() {
        let mut c = Criterion::new();
        let mut group = c.benchmark_group("test");
        group.sample_size(5);
        let mut ran = 0u64;
        group.bench_function("count", |b| b.iter(|| ran += 1));
        group.finish();
        // 1 warm-up + 5 measured.
        assert_eq!(ran, 6);
    }

    #[test]
    fn iter_batched_runs_setup_per_iteration() {
        let mut c = Criterion::new();
        let mut group = c.benchmark_group("test");
        group.sample_size(3);
        let mut setups = 0u64;
        group.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![1u8; 8]
                },
                |v| v.len(),
                BatchSize::SmallInput,
            )
        });
        assert_eq!(setups, 4);
    }
}
