//! Offline stand-in for the `rand` crate.
//!
//! Implements the subset of the rand 0.8 API this workspace uses —
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`], [`Rng::gen_range`] over
//! integer and float ranges, and [`seq::SliceRandom::shuffle`] — on top of a
//! SplitMix64 generator. Streams are deterministic for a given seed but are
//! **not** the same streams as the real `rand` crate.

use std::ops::{Range, RangeInclusive};

/// A random number generator yielding `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

/// Types `gen_range` can sample uniformly. The single blanket
/// [`SampleRange`] impl below (mirroring the real `rand` crate) is what
/// lets inference unify an unsuffixed literal range with the surrounding
/// expression's type.
pub trait SampleUniform: Copy + PartialOrd {
    /// Samples from `start..end`.
    fn sample_exclusive(start: Self, end: Self, rng: &mut dyn RngCore) -> Self;
    /// Samples from `start..=end`.
    fn sample_inclusive(start: Self, end: Self, rng: &mut dyn RngCore) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        T::sample_exclusive(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        let (start, end) = self.into_inner();
        T::sample_inclusive(start, end, rng)
    }
}

macro_rules! impl_int_uniform {
    ($($t:ty),+) => {$(
        impl SampleUniform for $t {
            fn sample_exclusive(start: $t, end: $t, rng: &mut dyn RngCore) -> $t {
                assert!(start < end, "cannot sample an empty range");
                let span = (end as i128 - start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
            fn sample_inclusive(start: $t, end: $t, rng: &mut dyn RngCore) -> $t {
                assert!(start <= end, "cannot sample an empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )+};
}

impl_int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_uniform {
    ($($t:ty),+) => {$(
        impl SampleUniform for $t {
            fn sample_exclusive(start: $t, end: $t, rng: &mut dyn RngCore) -> $t {
                assert!(start < end, "cannot sample an empty range");
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                let v = start + (end - start) * unit as $t;
                // Guard against rounding up to the exclusive bound.
                if v < end {
                    v
                } else {
                    start
                }
            }
            fn sample_inclusive(start: $t, end: $t, rng: &mut dyn RngCore) -> $t {
                assert!(start <= end, "cannot sample an empty range");
                let unit = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
                start + (end - start) * unit as $t
            }
        }
    )+};
}

impl_float_uniform!(f32, f64);

/// Convenience sampling methods over [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value uniformly from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Draws `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator: SplitMix64 in this stand-in.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&f));
            let i = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }
}
