//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no network access and no crate registry, so the
//! workspace vendors a minimal serialization framework under the same crate
//! name. It models data as a JSON-like [`Value`] tree: [`Serialize`] renders
//! a type into a `Value`, [`Deserialize`] rebuilds the type from one. The
//! companion `serde_derive` proc-macro derives both traits for the struct
//! and enum shapes this workspace uses (named structs, tuple structs, unit
//! and struct-variant enums, `#[serde(default)]` / `#[serde(default =
//! "path")]`), and `serde_json` supplies the text format.
//!
//! This is intentionally *not* API-compatible with real serde beyond what
//! the workspace needs; it exists so the repository builds and tests run in
//! a fully offline container.

use std::collections::BTreeMap;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// Field map used by [`Value::Object`]. Keys are stored sorted, which keeps
/// serialized output deterministic.
pub type Map = BTreeMap<String, Value>;

/// A JSON number: unsigned, signed, or floating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// A non-negative integer.
    U(u64),
    /// A negative integer.
    I(i64),
    /// A floating-point value.
    F(f64),
}

impl Number {
    /// The value as an `f64` (lossy for very large integers).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::U(v) => v as f64,
            Number::I(v) => v as f64,
            Number::F(v) => v,
        }
    }

    /// The value as a `u64` if it is a non-negative integer (or an
    /// integral float).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::U(v) => Some(v),
            Number::I(v) => u64::try_from(v).ok(),
            Number::F(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => Some(v as u64),
            Number::F(_) => None,
        }
    }

    /// The value as an `i64` if it fits (or an integral float).
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::U(v) => i64::try_from(v).ok(),
            Number::I(v) => Some(v),
            Number::F(v) if v.fract() == 0.0 && v >= i64::MIN as f64 && v <= i64::MAX as f64 => {
                Some(v as i64)
            }
            Number::F(_) => None,
        }
    }
}

/// A JSON-like value tree: the data model of this serde stand-in.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number.
    Number(Number),
    /// A string.
    String(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// A string-keyed map.
    Object(Map),
}

impl Value {
    /// The value as a map, if it is an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The value as a mutable map, if it is an object.
    pub fn as_object_mut(&mut self) -> Option<&mut Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The value as a slice, if it is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// Looks up a key (objects) or index-as-string; `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

/// Serialization/deserialization error: a message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Creates an error from a message.
    pub fn custom(msg: impl fmt::Display) -> Error {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Renders `self` into a [`Value`].
pub trait Serialize {
    /// Converts to the data model.
    fn serialize(&self) -> Value;
}

/// Rebuilds `Self` from a [`Value`].
pub trait Deserialize: Sized {
    /// Converts from the data model.
    ///
    /// # Errors
    ///
    /// Returns an [`Error`] describing the first shape or type mismatch.
    fn deserialize(value: &Value) -> Result<Self, Error>;
}

fn type_name(v: &Value) -> &'static str {
    match v {
        Value::Null => "null",
        Value::Bool(_) => "bool",
        Value::Number(_) => "number",
        Value::String(_) => "string",
        Value::Array(_) => "array",
        Value::Object(_) => "object",
    }
}

/// Builds a "expected X, got Y" error (used by generated code).
pub fn unexpected(expected: &str, got: &Value) -> Error {
    Error(format!("expected {expected}, got {}", type_name(got)))
}

macro_rules! impl_unsigned {
    ($($t:ty),+) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Number(Number::U(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let n = value
                    .as_u64()
                    .ok_or_else(|| unexpected("unsigned integer", value))?;
                <$t>::try_from(n).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )+};
}

macro_rules! impl_signed {
    ($($t:ty),+) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::Number(Number::U(v as u64))
                } else {
                    Value::Number(Number::I(v))
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let n = match value {
                    Value::Number(n) => n.as_i64(),
                    _ => None,
                };
                let n = n.ok_or_else(|| unexpected("integer", value))?;
                <$t>::try_from(n).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )+};
}

impl_unsigned!(u8, u16, u32, u64, usize);
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::Number(Number::F(*self))
    }
}

impl Deserialize for f64 {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        // `null` round-trips non-finite floats (the JSON writer emits null
        // for them, like real serde_json).
        match value {
            Value::Null => Ok(f64::NAN),
            _ => value.as_f64().ok_or_else(|| unexpected("number", value)),
        }
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::Number(Number::F(*self as f64))
    }
}

impl Deserialize for f32 {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        f64::deserialize(value).map(|v| v as f32)
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value.as_bool().ok_or_else(|| unexpected("bool", value))
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value.as_str().map(str::to_string).ok_or_else(|| unexpected("string", value))
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for std::sync::Arc<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        T::deserialize(value).map(std::sync::Arc::new)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::deserialize).collect(),
            _ => Err(unexpected("array", value)),
        }
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for std::collections::VecDeque<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::deserialize).collect(),
            _ => Err(unexpected("array", value)),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let v: Vec<T> = Vec::deserialize(value)?;
        <[T; N]>::try_from(v).map_err(|_| Error::custom(format!("expected array of length {N}")))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => v.serialize(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))+) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                const LEN: usize = 0 $( + { let _ = stringify!($name); 1 } )+;
                match value {
                    Value::Array(items) if items.len() == LEN => {
                        Ok(($($name::deserialize(&items[$idx])?,)+))
                    }
                    _ => Err(unexpected("tuple array", value)),
                }
            }
        }
    )+};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.clone(), v.serialize())).collect())
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Object(m) => {
                m.iter().map(|(k, v)| Ok((k.clone(), V::deserialize(v)?))).collect()
            }
            _ => Err(unexpected("object", value)),
        }
    }
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::deserialize(&42u64.serialize()).unwrap(), 42);
        assert_eq!(i32::deserialize(&(-7i32).serialize()).unwrap(), -7);
        assert_eq!(f64::deserialize(&1.5f64.serialize()).unwrap(), 1.5);
        assert!(bool::deserialize(&true.serialize()).unwrap());
        let s = String::from("hé\"llo");
        assert_eq!(String::deserialize(&s.serialize()).unwrap(), s);
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::deserialize(&v.serialize()).unwrap(), v);
        let o: Option<u8> = None;
        assert_eq!(Option::<u8>::deserialize(&o.serialize()).unwrap(), None);
        let t = (1u8, 2.5f64);
        assert_eq!(<(u8, f64)>::deserialize(&t.serialize()).unwrap(), t);
        let a = [1u8, 2, 3];
        assert_eq!(<[u8; 3]>::deserialize(&a.serialize()).unwrap(), a);
    }

    #[test]
    fn type_mismatches_error() {
        assert!(u64::deserialize(&Value::String("x".into())).is_err());
        assert!(bool::deserialize(&Value::Null).is_err());
        assert!(<[u8; 3]>::deserialize(&vec![1u8].serialize()).is_err());
        assert!(u8::deserialize(&300u64.serialize()).is_err());
    }
}
