//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest this workspace's property tests use:
//! the [`proptest!`] macro, [`Strategy`] with `prop_map`, numeric range
//! strategies, [`any`], [`Just`], tuple strategies, `prop::collection::vec`,
//! and the `prop_assert*` macros. Each test runs a fixed number of random
//! cases from a deterministic seed. Shrinking is not implemented — a failing
//! case reports its values via the assertion message instead.

use std::ops::{Range, RangeInclusive};

/// Error carried out of a failing property body.
pub type TestCaseError = String;

/// Deterministic PRNG (SplitMix64) driving case generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform value in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A uniform index in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        self.next_u64() % bound
    }
}

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty strategy range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )+};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let v = self.start + (self.end - self.start) * rng.unit_f64() as $t;
                if v < self.end { v } else { self.start }
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty strategy range");
                start + (end - start) * rng.unit_f64() as $t
            }
        }
    )+};
}

impl_float_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7)
}

/// Types with a canonical whole-domain strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )+};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy over a type's whole domain.
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The whole-domain strategy for `T` (e.g. `any::<u64>()`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any { _marker: std::marker::PhantomData }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// A length specification for [`vec`]: a fixed size or a range.
    pub trait IntoSizeRange {
        /// Lower and inclusive upper length bound.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty size range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.max > self.min {
                self.min + rng.below((self.max - self.min + 1) as u64) as usize
            } else {
                self.min
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Vectors of `element` values with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }
}

/// The names property tests import.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, collection, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Any, Arbitrary,
        Just, ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

/// Asserts a condition inside a property body, failing the case (not
/// panicking) so the harness can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)*));
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($a),
            stringify!($b),
            a,
            b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)*);
    }};
}

/// Inequality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a != b,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($a),
            stringify!($b),
            a
        );
    }};
}

/// Configuration accepted by `proptest! { #![proptest_config(...)] ... }`.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 32 }
    }
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running a fixed number of sampled cases (32 by
/// default; override with a leading `#![proptest_config(...)]` or the
/// `PROPTEST_CASES` environment variable, which wins).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)]
     $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                // Seed differs per test (by name) but is stable run to run.
                let seed = {
                    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
                    for b in stringify!($name).bytes() {
                        h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
                    }
                    h
                };
                let mut rng = $crate::TestRng::new(seed);
                let config: $crate::ProptestConfig = $cfg;
                let cases: u32 = match ::std::env::var("PROPTEST_CASES") {
                    Ok(v) => v.parse().unwrap_or(config.cases),
                    Err(_) => config.cases,
                };
                for case in 0..cases {
                    let result: ::std::result::Result<(), $crate::TestCaseError> = {
                        $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                        #[allow(clippy::redundant_closure_call)]
                        (|| { $body ::std::result::Result::Ok(()) })()
                    };
                    if let Err(message) = result {
                        panic!("property '{}' failed on case {}: {}", stringify!($name), case, message);
                    }
                }
            }
        )*
    };
    ($( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $( $(#[$meta])* fn $name ( $($arg in $strat),+ ) $body )*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 5usize..10, f in 0.0f64..1.0) {
            prop_assert!((5..10).contains(&x));
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn vec_lengths_respect_bounds(v in prop::collection::vec(0u64..100, 3..7)) {
            prop_assert!(v.len() >= 3 && v.len() <= 6);
            prop_assert!(v.iter().all(|&x| x < 100));
        }

        #[test]
        fn prop_map_applies(x in (1u64..10).prop_map(|v| v * 2)) {
            prop_assert!(x % 2 == 0);
            prop_assert!((2..20).contains(&x));
        }

        #[test]
        fn tuples_and_any_work(pair in (any::<u64>(), Just(7u8)), flag in any::<bool>()) {
            let (a, b) = pair;
            prop_assert_eq!(b, 7u8);
            let _ = a;
            prop_assert!(u8::from(flag) <= 1);
        }
    }

    #[test]
    fn failing_case_panics_with_message() {
        proptest! {
            fn always_fails(x in 0u64..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        let result = std::panic::catch_unwind(always_fails);
        let err = *result.expect_err("must fail").downcast::<String>().unwrap();
        assert!(err.contains("always_fails"), "{err}");
        assert!(err.contains("x was"), "{err}");
    }
}
