//! Derive macros for the offline `serde` stand-in.
//!
//! Parses the item's token stream directly (no `syn`/`quote` available in
//! this offline environment) and emits `impl serde::Serialize` /
//! `impl serde::Deserialize` against the stand-in's `Value` data model.
//!
//! Supported shapes — exactly what this workspace uses:
//! - structs with named fields (including `#[serde(default)]` and
//!   `#[serde(default = "path")]` field attributes),
//! - tuple structs (newtype and general),
//! - unit structs,
//! - enums with unit variants and struct variants.
//!
//! Unknown fields are ignored on deserialization, like real serde.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// How a missing field is handled during deserialization.
#[derive(Clone)]
enum FieldDefault {
    /// Missing field is an error.
    Required,
    /// `#[serde(default)]`: use `Default::default()`.
    DefaultTrait,
    /// `#[serde(default = "path")]`: call `path()`.
    Path(String),
}

#[derive(Clone)]
struct Field {
    name: String,
    default: FieldDefault,
}

enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Item {
    Struct { name: String, shape: Shape },
    Enum { name: String, variants: Vec<Variant> },
}

/// Extracts `serde(...)` attribute content if `tokens` (the inside of a
/// `#[...]` group) is a serde attribute.
fn serde_attr_default(attr_body: &[TokenTree]) -> Option<FieldDefault> {
    match attr_body.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return None,
    }
    let TokenTree::Group(g) = attr_body.get(1)? else {
        return None;
    };
    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
    match inner.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "default" => {
            if inner.len() == 1 {
                Some(FieldDefault::DefaultTrait)
            } else if let Some(TokenTree::Literal(lit)) = inner.get(2) {
                let s = lit.to_string();
                Some(FieldDefault::Path(s.trim_matches('"').to_string()))
            } else {
                None
            }
        }
        _ => None,
    }
}

/// Consumes leading attributes at `i`, returning any serde default spec.
fn skip_attrs(tokens: &[TokenTree], i: &mut usize) -> FieldDefault {
    let mut default = FieldDefault::Required;
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(*i + 1) {
                    let body: Vec<TokenTree> = g.stream().into_iter().collect();
                    if let Some(d) = serde_attr_default(&body) {
                        default = d;
                    }
                    *i += 2;
                } else {
                    *i += 1;
                }
            }
            _ => return default,
        }
    }
}

/// Consumes a visibility marker (`pub`, `pub(crate)`, ...) at `i`.
fn skip_vis(tokens: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

/// Parses the fields of a braced (named-field) body.
fn parse_named_fields(body: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let default = skip_attrs(&tokens, &mut i);
        skip_vis(&tokens, &mut i);
        let Some(TokenTree::Ident(name)) = tokens.get(i) else {
            break;
        };
        let name = name.to_string();
        i += 1;
        // Expect ':' then the type; skip to the next top-level ','.
        let mut depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(Field { name, default });
    }
    fields
}

/// Counts the elements of a parenthesized (tuple) body.
fn count_tuple_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut depth = 0i32;
    for t in &tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => count += 1,
            _ => {}
        }
    }
    // Tolerate a trailing comma.
    if matches!(tokens.last(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
        count -= 1;
    }
    count
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs(&tokens, &mut i);
        let Some(TokenTree::Ident(name)) = tokens.get(i) else {
            break;
        };
        let name = name.to_string();
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                i += 1;
                Shape::Named(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                i += 1;
                Shape::Tuple(n)
            }
            _ => Shape::Unit,
        };
        // Skip an optional discriminant `= expr` up to the comma.
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
        variants.push(Variant { name, shape });
    }
    variants
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    // Skip attributes and visibility before the item keyword.
    loop {
        skip_attrs(&tokens, &mut i);
        skip_vis(&tokens, &mut i);
        match tokens.get(i) {
            Some(TokenTree::Ident(id)) => {
                let kw = id.to_string();
                if kw == "struct" || kw == "enum" {
                    break;
                }
                i += 1; // e.g. `union` would fall through to the error below
            }
            Some(_) => i += 1,
            None => return Err("expected `struct` or `enum`".to_string()),
        }
    }
    let TokenTree::Ident(kw) = &tokens[i] else { unreachable!() };
    let is_struct = kw.to_string() == "struct";
    i += 1;
    let Some(TokenTree::Ident(name)) = tokens.get(i) else {
        return Err("expected an item name".to_string());
    };
    let name = name.to_string();
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!("serde stand-in cannot derive for generic type `{name}`"));
        }
    }
    if is_struct {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok(Item::Struct { name, shape: Shape::Named(parse_named_fields(g.stream())) })
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Ok(Item::Struct { name, shape: Shape::Tuple(count_tuple_fields(g.stream())) })
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                Ok(Item::Struct { name, shape: Shape::Unit })
            }
            _ => Err(format!("unsupported struct body for `{name}`")),
        }
    } else {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok(Item::Enum { name, variants: parse_variants(g.stream()) })
            }
            _ => Err(format!("expected enum body for `{name}`")),
        }
    }
}

fn default_expr(d: &FieldDefault) -> String {
    match d {
        FieldDefault::Required => unreachable!("caller checks"),
        FieldDefault::DefaultTrait => "::std::default::Default::default()".to_string(),
        FieldDefault::Path(p) => format!("{p}()"),
    }
}

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, shape } => {
            let body = match shape {
                Shape::Unit => "::serde::Value::Null".to_string(),
                Shape::Tuple(1) => "::serde::Serialize::serialize(&self.0)".to_string(),
                Shape::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|k| format!("::serde::Serialize::serialize(&self.{k})"))
                        .collect();
                    format!("::serde::Value::Array(vec![{}])", items.join(", "))
                }
                Shape::Named(fields) => {
                    let mut s = String::from("let mut m = ::serde::Map::new();\n");
                    for f in fields {
                        s.push_str(&format!(
                            "m.insert(::std::string::String::from(\"{0}\"), \
                             ::serde::Serialize::serialize(&self.{0}));\n",
                            f.name
                        ));
                    }
                    s.push_str("::serde::Value::Object(m)");
                    s
                }
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn serialize(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                match &v.shape {
                    Shape::Unit => arms.push_str(&format!(
                        "{name}::{v} => ::serde::Value::String(\
                         ::std::string::String::from(\"{v}\")),\n",
                        v = v.name
                    )),
                    Shape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("f{k}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::serialize({b})"))
                            .collect();
                        let payload = if *n == 1 {
                            items[0].clone()
                        } else {
                            format!("::serde::Value::Array(vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{v}({binds}) => {{\n\
                             let mut m = ::serde::Map::new();\n\
                             m.insert(::std::string::String::from(\"{v}\"), {payload});\n\
                             ::serde::Value::Object(m)\n}}\n",
                            v = v.name,
                            binds = binds.join(", ")
                        ));
                    }
                    Shape::Named(fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let mut inserts = String::new();
                        for f in fields {
                            inserts.push_str(&format!(
                                "inner.insert(::std::string::String::from(\"{0}\"), \
                                 ::serde::Serialize::serialize({0}));\n",
                                f.name
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{v} {{ {binds} }} => {{\n\
                             let mut inner = ::serde::Map::new();\n{inserts}\
                             let mut m = ::serde::Map::new();\n\
                             m.insert(::std::string::String::from(\"{v}\"), \
                             ::serde::Value::Object(inner));\n\
                             ::serde::Value::Object(m)\n}}\n",
                            v = v.name,
                            binds = binds.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn serialize(&self) -> ::serde::Value {{\nmatch self {{\n{arms}}}\n}}\n}}\n"
            )
        }
    }
}

fn gen_named_field_reads(fields: &[Field], type_label: &str) -> String {
    let mut s = String::new();
    for f in fields {
        let missing = match &f.default {
            FieldDefault::Required => format!(
                "return ::std::result::Result::Err(::serde::Error::custom(\
                 \"missing field `{}` in {}\"))",
                f.name, type_label
            ),
            other => default_expr(other),
        };
        s.push_str(&format!(
            "{0}: match obj.get(\"{0}\") {{\n\
             ::std::option::Option::Some(v) => ::serde::Deserialize::deserialize(v)?,\n\
             ::std::option::Option::None => {1},\n}},\n",
            f.name, missing
        ));
    }
    s
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, shape } => {
            let body = match shape {
                Shape::Unit => format!("::std::result::Result::Ok({name})"),
                Shape::Tuple(1) => format!(
                    "::std::result::Result::Ok({name}(::serde::Deserialize::deserialize(value)?))"
                ),
                Shape::Tuple(n) => {
                    let reads: Vec<String> = (0..*n)
                        .map(|k| format!("::serde::Deserialize::deserialize(&items[{k}])?"))
                        .collect();
                    format!(
                        "match value {{\n\
                         ::serde::Value::Array(items) if items.len() == {n} => \
                         ::std::result::Result::Ok({name}({reads})),\n\
                         other => ::std::result::Result::Err(\
                         ::serde::unexpected(\"array of {n} elements\", other)),\n}}",
                        reads = reads.join(", ")
                    )
                }
                Shape::Named(fields) => {
                    let reads = gen_named_field_reads(fields, name);
                    format!(
                        "let obj = value.as_object().ok_or_else(|| \
                         ::serde::unexpected(\"object for {name}\", value))?;\n\
                         ::std::result::Result::Ok({name} {{\n{reads}}})"
                    )
                }
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn deserialize(value: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n}}\n"
            )
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                match &v.shape {
                    Shape::Unit => unit_arms.push_str(&format!(
                        "\"{v}\" => ::std::result::Result::Ok({name}::{v}),\n",
                        v = v.name
                    )),
                    Shape::Tuple(n) => {
                        let body = if *n == 1 {
                            format!(
                                "::std::result::Result::Ok({name}::{v}(\
                                 ::serde::Deserialize::deserialize(payload)?))",
                                v = v.name
                            )
                        } else {
                            let reads: Vec<String> = (0..*n)
                                .map(|k| format!("::serde::Deserialize::deserialize(&items[{k}])?"))
                                .collect();
                            format!(
                                "match payload {{\n\
                                 ::serde::Value::Array(items) if items.len() == {n} => \
                                 ::std::result::Result::Ok({name}::{v}({reads})),\n\
                                 other => ::std::result::Result::Err(\
                                 ::serde::unexpected(\"array of {n} elements\", other)),\n}}",
                                v = v.name,
                                reads = reads.join(", ")
                            )
                        };
                        data_arms.push_str(&format!("\"{v}\" => {{ {body} }}\n", v = v.name));
                    }
                    Shape::Named(fields) => {
                        let reads = gen_named_field_reads(fields, &format!("{name}::{}", v.name));
                        data_arms.push_str(&format!(
                            "\"{v}\" => {{\n\
                             let obj = payload.as_object().ok_or_else(|| \
                             ::serde::unexpected(\"object for {name}::{v}\", payload))?;\n\
                             ::std::result::Result::Ok({name}::{v} {{\n{reads}}})\n}}\n",
                            v = v.name
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn deserialize(value: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 match value {{\n\
                 ::serde::Value::String(s) => match s.as_str() {{\n{unit_arms}\
                 other => ::std::result::Result::Err(::serde::Error::custom(\
                 format!(\"unknown variant `{{other}}` of {name}\"))),\n}},\n\
                 ::serde::Value::Object(m) if m.len() == 1 => {{\n\
                 let (tag, payload) = m.iter().next().expect(\"len checked\");\n\
                 match tag.as_str() {{\n{data_arms}\
                 other => ::std::result::Result::Err(::serde::Error::custom(\
                 format!(\"unknown variant `{{other}}` of {name}\"))),\n}}\n}},\n\
                 other => ::std::result::Result::Err(\
                 ::serde::unexpected(\"string or 1-key object for {name}\", other)),\n}}\n}}\n}}\n"
            )
        }
    }
}

fn derive(input: TokenStream, gen: fn(&Item) -> String) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen(&item).parse().expect("generated impl must parse"),
        Err(msg) => format!("compile_error!(\"serde derive: {msg}\");")
            .parse()
            .expect("compile_error must parse"),
    }
}

/// Derives `serde::Serialize` (stand-in data model).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    derive(input, gen_serialize)
}

/// Derives `serde::Deserialize` (stand-in data model).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    derive(input, gen_deserialize)
}
