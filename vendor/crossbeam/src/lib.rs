//! Offline stand-in for the `crossbeam` crate.
//!
//! [`scope`] wraps `std::thread::scope` behind crossbeam's callback-taking
//! spawn signature, and [`deque`] provides `Injector`/`Worker`/`Stealer`
//! with the crossbeam API shape, implemented with locked `VecDeque`s. The
//! locking implementation is slower per operation than real crossbeam's
//! lock-free deques, but the workloads scheduled through it in this
//! workspace are millisecond-scale simulation replays, so queue overhead is
//! noise.

use std::thread;

/// A scope handed to [`scope`]'s callback; spawns threads that may borrow
/// from the enclosing stack frame.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. The closure receives the scope again, like
    /// crossbeam's API (commonly ignored as `|_|`).
    pub fn spawn<F, T>(&self, f: F) -> thread::ScopedJoinHandle<'scope, T>
    where
        F: for<'a> FnOnce(&'a Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || f(&Scope { inner }))
    }
}

/// Runs `f` with a scope in which borrowing threads can be spawned; returns
/// once every spawned thread has finished.
///
/// # Errors
///
/// The `Result` mirrors crossbeam's signature; with `std::thread::scope`
/// underneath, a panicking child propagates its panic instead of returning
/// `Err`.
pub fn scope<'env, F, R>(f: F) -> thread::Result<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(thread::scope(|s| f(&Scope { inner: s })))
}

pub mod deque {
    //! Work-stealing deque API (`Injector` / `Worker` / `Stealer`).

    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    /// Result of a steal attempt.
    #[derive(Debug)]
    pub enum Steal<T> {
        /// Nothing to steal.
        Empty,
        /// One stolen task.
        Success(T),
        /// A race was lost; try again.
        Retry,
    }

    impl<T> Steal<T> {
        /// Returns `true` for [`Steal::Empty`].
        pub fn is_empty(&self) -> bool {
            matches!(self, Steal::Empty)
        }

        /// Converts to an [`Option`], discarding `Retry`.
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(v) => Some(v),
                _ => None,
            }
        }
    }

    /// A global FIFO task queue every worker can steal from.
    #[derive(Debug, Default)]
    pub struct Injector<T> {
        queue: Mutex<VecDeque<T>>,
    }

    impl<T> Injector<T> {
        /// Creates an empty injector.
        pub fn new() -> Injector<T> {
            Injector { queue: Mutex::new(VecDeque::new()) }
        }

        /// Enqueues a task at the back.
        pub fn push(&self, task: T) {
            self.queue.lock().expect("injector lock").push_back(task);
        }

        /// Steals one task from the front.
        pub fn steal(&self) -> Steal<T> {
            match self.queue.lock().expect("injector lock").pop_front() {
                Some(v) => Steal::Success(v),
                None => Steal::Empty,
            }
        }

        /// Returns `true` when no tasks are queued.
        pub fn is_empty(&self) -> bool {
            self.queue.lock().expect("injector lock").is_empty()
        }
    }

    #[derive(Debug)]
    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
    }

    /// The owner side of a per-worker deque (LIFO pop for locality).
    #[derive(Debug)]
    pub struct Worker<T> {
        shared: Arc<Shared<T>>,
    }

    /// The thief side of a worker's deque (FIFO steal).
    #[derive(Debug, Clone)]
    pub struct Stealer<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Worker<T> {
        /// Creates a LIFO worker deque.
        pub fn new_lifo() -> Worker<T> {
            Worker { shared: Arc::new(Shared { queue: Mutex::new(VecDeque::new()) }) }
        }

        /// Creates a FIFO worker deque.
        pub fn new_fifo() -> Worker<T> {
            Worker::new_lifo()
        }

        /// A [`Stealer`] handle onto this deque.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer { shared: Arc::clone(&self.shared) }
        }

        /// Pushes a task onto the owner's end.
        pub fn push(&self, task: T) {
            self.shared.queue.lock().expect("worker lock").push_back(task);
        }

        /// Pops a task from the owner's end (most recently pushed first).
        pub fn pop(&self) -> Option<T> {
            self.shared.queue.lock().expect("worker lock").pop_back()
        }

        /// Returns `true` when the deque is empty.
        pub fn is_empty(&self) -> bool {
            self.shared.queue.lock().expect("worker lock").is_empty()
        }
    }

    impl<T> Stealer<T> {
        /// Steals a task from the opposite end of the owner's.
        pub fn steal(&self) -> Steal<T> {
            match self.shared.queue.lock().expect("stealer lock").pop_front() {
                Some(v) => Steal::Success(v),
                None => Steal::Empty,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::deque::{Injector, Steal, Worker};
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_joins_and_collects() {
        let counter = AtomicUsize::new(0);
        super::scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        })
        .expect("no panics");
        assert_eq!(counter.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn deque_order_semantics() {
        let w = Worker::new_lifo();
        let s = w.stealer();
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(w.pop(), Some(3), "owner pops LIFO");
        assert!(matches!(s.steal(), Steal::Success(1)), "thief steals FIFO");
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn injector_drains_across_threads() {
        let inj = Injector::new();
        for i in 0..100 {
            inj.push(i);
        }
        let seen = AtomicUsize::new(0);
        super::scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| loop {
                    match inj.steal() {
                        Steal::Success(_) => {
                            seen.fetch_add(1, Ordering::Relaxed);
                        }
                        Steal::Empty => break,
                        Steal::Retry => {}
                    }
                });
            }
        })
        .expect("no panics");
        assert_eq!(seen.load(Ordering::Relaxed), 100);
        assert!(inj.is_empty());
    }
}
