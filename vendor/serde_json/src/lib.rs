//! Offline stand-in for the `serde_json` crate.
//!
//! Provides JSON text parsing and printing over the vendored `serde`
//! stand-in's [`Value`] data model: [`to_string`], [`to_string_pretty`],
//! [`from_str`], [`from_value`] and [`to_value`]. Numbers keep their
//! integer/float distinction so `u64` counters round-trip exactly; floats
//! print with Rust's shortest round-trip formatting.

use std::fmt::Write as _;

pub use serde::{Error, Map, Number, Value};

/// Serializes `value` as compact JSON.
///
/// # Errors
///
/// Infallible for the stand-in data model; the `Result` mirrors the real
/// serde_json signature.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), None, 0);
    Ok(out)
}

/// Serializes `value` as indented JSON.
///
/// # Errors
///
/// Infallible for the stand-in data model (see [`to_string`]).
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), Some(2), 0);
    Ok(out)
}

/// Converts a value into the data model.
///
/// # Errors
///
/// Infallible for the stand-in data model.
pub fn to_value<T: serde::Serialize>(value: &T) -> Result<Value, Error> {
    Ok(value.serialize())
}

/// Parses JSON text into any deserializable type.
///
/// # Errors
///
/// Returns an [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!("trailing characters at offset {}", p.pos)));
    }
    T::deserialize(&value)
}

/// Rebuilds a type from an already-parsed [`Value`].
///
/// # Errors
///
/// Returns an [`Error`] on a shape mismatch.
pub fn from_value<T: serde::Deserialize>(value: Value) -> Result<T, Error> {
    T::deserialize(&value)
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(out: &mut String, n: &Number) {
    match *n {
        Number::U(v) => {
            let _ = write!(out, "{v}");
        }
        Number::I(v) => {
            let _ = write!(out, "{v}");
        }
        Number::F(v) => {
            if v.is_finite() {
                // Rust's Display for floats is the shortest string that
                // round-trips, so parse-back is exact.
                if v == v.trunc() && v.abs() < 1e15 {
                    let _ = write!(out, "{v:.1}");
                } else {
                    let _ = write!(out, "{v}");
                }
            } else {
                // Like real serde_json: non-finite floats become null.
                out.push_str("null");
            }
        }
    }
}

fn write_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, n),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            write_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_indent(out, indent, level + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1);
            }
            write_indent(out, indent, level);
            out.push('}');
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn err(&self, msg: &str) -> Error {
        Error::custom(format!("{msg} at offset {}", self.pos))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn consume_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => {
                if self.consume_literal("null") {
                    Ok(Value::Null)
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b't') => {
                if self.consume_literal("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'f') => {
                if self.consume_literal("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(c) => Err(self.err(&format!("unexpected character '{}'", c as char))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !self.consume_literal("\\u") {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                let lo = self.parse_hex4()?;
                                let combined =
                                    0x10000 + (((hi - 0xD800) as u32) << 10) + (lo - 0xDC00) as u32;
                                char::from_u32(combined)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else {
                                char::from_u32(hi as u32)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?
                            };
                            out.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u16, Error> {
        let slice = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated unicode escape"))?;
        let s = std::str::from_utf8(slice).map_err(|_| self.err("invalid unicode escape"))?;
        let v = u16::from_str_radix(s, 16).map_err(|_| self.err("invalid unicode escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::Number(Number::U(v)));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::Number(Number::I(v)));
            }
        }
        text.parse::<f64>()
            .map(|v| Value::Number(Number::F(v)))
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        for json in ["null", "true", "false", "42", "-17", "1.5", "\"hi\""] {
            let v: Value = from_str(json).unwrap();
            assert_eq!(to_string(&v).unwrap(), json);
        }
    }

    #[test]
    fn nested_roundtrip() {
        let json = r#"{"a":[1,2.5,{"b":null}],"c":"x\ny"}"#;
        let v: Value = from_str(json).unwrap();
        let printed = to_string(&v).unwrap();
        let v2: Value = from_str(&printed).unwrap();
        assert_eq!(v, v2);
    }

    #[test]
    fn float_roundtrip_is_exact() {
        let original = 0.1f64 + 0.2;
        let json = to_string(&original).unwrap();
        let back: f64 = from_str(&json).unwrap();
        assert_eq!(original, back);
    }

    #[test]
    fn u64_precision_is_preserved() {
        let v = u64::MAX - 1;
        let json = to_string(&v).unwrap();
        let back: u64 = from_str(&json).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{oops}").is_err());
        assert!(from_str::<Value>("[1,2,").is_err());
        assert!(from_str::<Value>("12 34").is_err());
        assert!(from_str::<Value>("").is_err());
    }

    #[test]
    fn pretty_output_parses_back() {
        let v: Value = from_str(r#"{"a":[1,2],"b":{"c":true}}"#).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let s = "tab\t quote\" slash\\ nl\n unicode \u{1F600} ctrl\u{1}";
        let json = to_string(&s.to_string()).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
